//! Concurrent execution of many swarm simulations.
//!
//! Same work-stealing shape as `prs-dynamics::parallel`: a shared atomic
//! cursor dispenses instance indices to crossbeam scoped workers; each
//! worker owns its whole swarm (no shared mutable state), results land in
//! per-instance slots.

// prs-lint: allow-file(panic, reason = "poison/join propagation in the fan-out scaffolding: a worker panic already aborted the run, and the slot-filled expect is the cursor-coverage invariant")

use crate::agent::Strategy;
use crate::swarm::{Swarm, SwarmConfig, SwarmMetrics};
use prs_graph::Graph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One simulation job: a topology and an optional Sybil attacker.
#[derive(Clone, Debug)]
pub struct SwarmJob {
    /// The swarm topology with capacities.
    pub graph: Graph,
    /// `Some((v, w1, w2))` plants a Sybil attacker at agent `v`.
    pub attacker: Option<(usize, f64, f64)>,
}

/// Run all jobs concurrently on `threads` workers.
pub fn run_swarms(jobs: &[SwarmJob], cfg: &SwarmConfig, threads: usize) -> Vec<SwarmMetrics> {
    let threads = threads.max(1).min(jobs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SwarmMetrics>>> = jobs.iter().map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        let (cursor, slots) = (&cursor, &slots);
        for w in 0..threads {
            scope.spawn(move |_| {
                {
                    let mut sp = prs_trace::span("p2psim", "par_worker");
                    sp.attr("worker", || w.to_string());
                    let mut done: u64 = 0;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        done += 1;
                        let job = &jobs[i];
                        let mut swarm = match job.attacker {
                            Some((v, w1, w2)) => Swarm::with_strategies(&job.graph, |a| {
                                if a == v {
                                    Strategy::Sybil { w1, w2 }
                                } else {
                                    Strategy::Honest
                                }
                            }),
                            None => Swarm::new(&job.graph),
                        };
                        let metrics = swarm.run(cfg);
                        *slots[i].lock().expect("poisoned") = Some(metrics);
                    }
                    sp.attr("jobs", || done.to_string());
                }
                // Last act: the scope join can race TLS destructors.
                prs_trace::flush_thread();
            });
        }
    })
    .expect("swarm worker panicked");

    slots
        .into_iter()
        .map(|s| s.into_inner().expect("poisoned").expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_graph::random;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(21);
        let jobs: Vec<SwarmJob> = (0..8)
            .map(|i| SwarmJob {
                graph: random::random_ring(&mut rng, 6, 1, 9),
                attacker: if i % 2 == 0 {
                    None
                } else {
                    Some((0, 1.0, 1.0))
                },
            })
            .collect();
        let cfg = SwarmConfig::default();
        let par = run_swarms(&jobs, &cfg, 4);
        for (i, job) in jobs.iter().enumerate() {
            let mut swarm = match job.attacker {
                Some((v, w1, w2)) => Swarm::with_strategies(&job.graph, |a| {
                    if a == v {
                        Strategy::Sybil { w1, w2 }
                    } else {
                        Strategy::Honest
                    }
                }),
                None => Swarm::new(&job.graph),
            };
            let seq = swarm.run(&cfg);
            assert_eq!(par[i].rounds, seq.rounds, "job {i}");
            assert_eq!(par[i].utilities, seq.utilities, "job {i}");
        }
    }

    #[test]
    fn empty_job_list() {
        let out = run_swarms(&[], &SwarmConfig::default(), 4);
        assert!(out.is_empty());
    }
}
