//! Struct-of-arrays swarm core: flat capacity lanes, CSR peer adjacency,
//! and contiguous per-edge send/receive lanes.
//!
//! A protocol round is two flat passes over the arc arena:
//!
//! 1. **respond** — every agent sums its receive lane (peer-slot order) and
//!    writes its send lane (equation (1), or a fixed Sybil split);
//! 2. **deliver** — every agent gathers `received[arc] = outgoing[rev[arc]]`
//!    through the reverse-arc index and refreshes its utility lanes.
//!
//! Neither pass allocates: after warm-up a round touches only pre-sized
//! lanes, which is what lets a 10⁶-agent swarm run at interactive speed.
//! The per-agent gather is bit-identical to the legacy message-routing
//! engine because each receive cell has exactly one writer per round and
//! the legacy utility sum also ran in peer-slot order; see
//! `tests/swarm_soa_equivalence.rs` for the replayed proof.
//!
//! [`CsrTopology`] is shared with `prs_dynamics::F64Engine`, which runs
//! its allocation lanes over the same offsets/rev layout. Dynamic
//! membership (join/leave/rewire with free-list slot recycling and
//! incremental CSR patching) lives in [`crate::membership`].

use crate::agent::{AgentId, Strategy};
use crate::swarm::{SwarmConfig, SwarmMetrics};
use prs_graph::{Graph, GraphError};
use std::ops::Range;

/// Span names under the `p2psim` layer, bound to `PSPAN_*` consts so
/// prs-lint's trace-registry extraction ties them to the layer (see
/// `span_const_layers` in `crates/xtask/src/rules.rs`).
const PSPAN_ROUND: &str = "soa_round";
const PSPAN_CHECKPOINT: &str = "checkpoint";

/// Sentinel for stale arena cells (abandoned or not-yet-used region slots).
const STALE: usize = usize::MAX;

/// Errors from incremental topology patching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// An endpoint slot id is out of range.
    UnknownSlot(AgentId),
    /// Both endpoints are the same agent.
    SelfLoop(AgentId),
    /// The edge is already present.
    DuplicateEdge(AgentId, AgentId),
    /// The edge to remove does not exist.
    MissingEdge(AgentId, AgentId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownSlot(v) => write!(f, "unknown agent slot {v}"),
            TopologyError::SelfLoop(v) => write!(f, "self-loop at agent {v}"),
            TopologyError::DuplicateEdge(u, v) => write!(f, "edge {u}–{v} already present"),
            TopologyError::MissingEdge(u, v) => write!(f, "edge {u}–{v} not present"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Per-arc payload lanes that must move in lockstep with CSR region edits.
///
/// The topology owns only the adjacency structure (`peer_ids` and the
/// reverse-arc index); engines keep their per-arc payloads (send/receive
/// shares) in parallel vectors indexed by the same arc ids. Every patch
/// that relocates or shifts a region calls back through this trait so the
/// payloads stay aligned.
pub trait ArcLanes {
    /// Grow the arc arena to `len` cells (new cells zeroed).
    fn grow(&mut self, len: usize);
    /// Copy `len` cells from `src` to `dst` (regions never overlap).
    fn copy_region(&mut self, src: usize, dst: usize, len: usize);
    /// Move cells `[pos, end)` one cell up, leaving `pos` stale.
    fn shift_up(&mut self, pos: usize, end: usize);
    /// Move cells `(pos, end)` one cell down, overwriting `pos`.
    fn shift_down(&mut self, pos: usize, end: usize);
    /// Zero one freshly inserted cell.
    fn clear(&mut self, pos: usize);
}

/// A no-payload implementation for topology-only callers (tests, builders).
impl ArcLanes for () {
    fn grow(&mut self, _len: usize) {}
    fn copy_region(&mut self, _src: usize, _dst: usize, _len: usize) {}
    fn shift_up(&mut self, _pos: usize, _end: usize) {}
    fn shift_down(&mut self, _pos: usize, _end: usize) {}
    fn clear(&mut self, _pos: usize) {}
}

/// CSR-style undirected adjacency with a reverse-arc index and per-region
/// headroom for incremental patching.
///
/// Agent `v`'s peers live in the arc arena at
/// `peer_ids[offsets[v] .. offsets[v] + degrees[v]]`, sorted ascending;
/// the region owns `caps[v] ≥ degrees[v]` cells. `rev[a]` is the absolute
/// arc index of arc `a`'s reverse (`rev[rev[a]] == a`). Regions that
/// outgrow their headroom relocate to the arena tail (amortized doubling),
/// so offsets need not stay monotone after churn.
#[derive(Clone, Debug)]
pub struct CsrTopology {
    offsets: Vec<usize>,
    degrees: Vec<usize>,
    caps: Vec<usize>,
    peer_ids: Vec<AgentId>,
    rev: Vec<usize>,
}

impl CsrTopology {
    /// Flatten a [`Graph`]'s adjacency (regions packed, no headroom).
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n);
        let mut degrees = Vec::with_capacity(n);
        let mut peer_ids = Vec::with_capacity(2 * g.m());
        let mut acc = 0usize;
        for v in 0..n {
            let nb = g.neighbors(v);
            offsets.push(acc);
            degrees.push(nb.len());
            acc += nb.len();
            peer_ids.extend_from_slice(nb);
        }
        let caps = degrees.clone();
        let mut rev = vec![STALE; peer_ids.len()];
        for v in 0..n {
            for a in offsets[v]..offsets[v] + degrees[v] {
                let u = peer_ids[a];
                // prs-lint: allow(panic, reason = "Graph guarantees symmetric sorted adjacency; asymmetry is a graph-construction bug")
                let pos = peer_ids[offsets[u]..offsets[u] + degrees[u]]
                    .binary_search(&v)
                    .expect("undirected adjacency is symmetric");
                rev[a] = offsets[u] + pos;
            }
        }
        CsrTopology {
            offsets,
            degrees,
            caps,
            peer_ids,
            rev,
        }
    }

    /// Number of agent slots (live or recycled).
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.offsets.len()
    }

    /// Total arc-arena length (lanes must be sized to this).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.peer_ids.len()
    }

    /// Degree of slot `v`.
    #[inline]
    pub fn degree(&self, v: AgentId) -> usize {
        self.degrees[v]
    }

    /// Arc range of slot `v`'s live region.
    #[inline]
    pub fn range(&self, v: AgentId) -> Range<usize> {
        self.offsets[v]..self.offsets[v] + self.degrees[v]
    }

    /// Sorted peer ids of slot `v`.
    #[inline]
    pub fn peers(&self, v: AgentId) -> &[AgentId] {
        &self.peer_ids[self.range(v)]
    }

    /// Peer at the far end of arc `a`.
    #[inline]
    pub fn peer_at(&self, a: usize) -> AgentId {
        self.peer_ids[a]
    }

    /// Absolute index of the reverse arc of `a`.
    #[inline]
    pub fn rev(&self, a: usize) -> usize {
        self.rev[a]
    }

    /// Arc index of `v → u`, if adjacent.
    pub fn find_arc(&self, v: AgentId, u: AgentId) -> Option<usize> {
        let r = self.range(v);
        self.peer_ids[r.clone()]
            .binary_search(&u)
            .ok()
            .map(|pos| r.start + pos)
    }

    /// Append a fresh slot with an empty region of `region_cap` headroom.
    pub fn add_slot<L: ArcLanes>(&mut self, region_cap: usize, lanes: &mut L) -> AgentId {
        let v = self.offsets.len();
        let start = self.peer_ids.len();
        self.offsets.push(start);
        self.degrees.push(0);
        self.caps.push(region_cap);
        self.peer_ids.resize(start + region_cap, STALE);
        self.rev.resize(start + region_cap, STALE);
        lanes.grow(start + region_cap);
        v
    }

    /// Insert undirected edge `a–b`, keeping both regions sorted and the
    /// reverse index exact. Returns the two new arc indices
    /// `(a → b, b → a)`; their lane cells are zeroed via [`ArcLanes::clear`].
    pub fn insert_edge<L: ArcLanes>(
        &mut self,
        a: AgentId,
        b: AgentId,
        lanes: &mut L,
    ) -> Result<(usize, usize), TopologyError> {
        let n = self.n_slots();
        if a >= n {
            return Err(TopologyError::UnknownSlot(a));
        }
        if b >= n {
            return Err(TopologyError::UnknownSlot(b));
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        if self.find_arc(a, b).is_some() {
            return Err(TopologyError::DuplicateEdge(a, b));
        }
        let pa = self.insert_half(a, b, lanes);
        let pb = self.insert_half(b, a, lanes);
        self.rev[pa] = pb;
        self.rev[pb] = pa;
        lanes.clear(pa);
        lanes.clear(pb);
        Ok((pa, pb))
    }

    /// Remove undirected edge `a–b` (both regions shift down one cell).
    pub fn remove_edge<L: ArcLanes>(
        &mut self,
        a: AgentId,
        b: AgentId,
        lanes: &mut L,
    ) -> Result<(), TopologyError> {
        let n = self.n_slots();
        if a >= n {
            return Err(TopologyError::UnknownSlot(a));
        }
        if b >= n {
            return Err(TopologyError::UnknownSlot(b));
        }
        if self.find_arc(a, b).is_none() {
            return Err(TopologyError::MissingEdge(a, b));
        }
        self.remove_half(a, b, lanes);
        self.remove_half(b, a, lanes);
        Ok(())
    }

    /// Sorted insertion of `u` into `v`'s region (growing it on demand).
    /// The new cell's `rev` is left stale; the caller links both halves.
    fn insert_half<L: ArcLanes>(&mut self, v: AgentId, u: AgentId, lanes: &mut L) -> usize {
        if self.degrees[v] == self.caps[v] {
            let new_cap = (self.caps[v] * 2).max(4);
            self.relocate(v, new_cap, lanes);
        }
        let start = self.offsets[v];
        let d = self.degrees[v];
        let p = self.peer_ids[start..start + d].partition_point(|&x| x < u);
        // Shift [start+p, start+d) up one cell, repairing the partners'
        // back-pointers as each arc moves.
        let mut i = start + d;
        while i > start + p {
            self.peer_ids[i] = self.peer_ids[i - 1];
            let r = self.rev[i - 1];
            self.rev[i] = r;
            self.rev[r] = i;
            i -= 1;
        }
        lanes.shift_up(start + p, start + d);
        self.peer_ids[start + p] = u;
        self.rev[start + p] = STALE;
        self.degrees[v] = d + 1;
        start + p
    }

    /// Remove `u` from `v`'s sorted region, shifting the tail down.
    fn remove_half<L: ArcLanes>(&mut self, v: AgentId, u: AgentId, lanes: &mut L) {
        let start = self.offsets[v];
        let d = self.degrees[v];
        let p = start + self.peer_ids[start..start + d].partition_point(|&x| x < u);
        for i in p..start + d - 1 {
            self.peer_ids[i] = self.peer_ids[i + 1];
            let r = self.rev[i + 1];
            self.rev[i] = r;
            self.rev[r] = i;
        }
        lanes.shift_down(p, start + d);
        self.peer_ids[start + d - 1] = STALE;
        self.rev[start + d - 1] = STALE;
        self.degrees[v] = d - 1;
    }

    /// Move `v`'s region to the arena tail with `new_cap` headroom
    /// (amortized-doubling growth; the old region is abandoned in place).
    fn relocate<L: ArcLanes>(&mut self, v: AgentId, new_cap: usize, lanes: &mut L) {
        let old_start = self.offsets[v];
        let old_cap = self.caps[v];
        let d = self.degrees[v];
        let new_start = self.peer_ids.len();
        self.peer_ids.resize(new_start + new_cap, STALE);
        self.rev.resize(new_start + new_cap, STALE);
        lanes.grow(new_start + new_cap);
        for j in 0..d {
            self.peer_ids[new_start + j] = self.peer_ids[old_start + j];
            let r = self.rev[old_start + j];
            self.rev[new_start + j] = r;
            self.rev[r] = new_start + j;
        }
        lanes.copy_region(old_start, new_start, d);
        for j in old_start..old_start + old_cap {
            self.peer_ids[j] = STALE;
            self.rev[j] = STALE;
        }
        self.offsets[v] = new_start;
        self.caps[v] = new_cap;
    }

    /// Structural invariants (sorted disjoint regions, `rev` involution,
    /// symmetry). Used by the membership property tests; `Err` carries a
    /// human-readable description of the first violation.
    pub fn check(&self) -> Result<(), String> {
        let mut regions: Vec<(usize, usize, AgentId)> = (0..self.n_slots())
            .map(|v| (self.offsets[v], self.caps[v], v))
            .collect();
        regions.sort_unstable();
        for w in regions.windows(2) {
            let ((s0, c0, v0), (s1, _, v1)) = (w[0], w[1]);
            if s0 + c0 > s1 {
                return Err(format!("regions of slots {v0} and {v1} overlap"));
            }
        }
        if let Some(&(s, c, v)) = regions.last() {
            if s + c > self.arena_len() {
                return Err(format!("region of slot {v} exceeds the arena"));
            }
        }
        for v in 0..self.n_slots() {
            if self.degrees[v] > self.caps[v] {
                return Err(format!("slot {v}: degree exceeds region capacity"));
            }
            let r = self.range(v);
            let peers = &self.peer_ids[r.clone()];
            if !peers.windows(2).all(|p| p[0] < p[1]) {
                return Err(format!("slot {v}: peers not strictly sorted"));
            }
            for a in r {
                let u = self.peer_ids[a];
                if u >= self.n_slots() || u == v {
                    return Err(format!("slot {v}: bad peer {u}"));
                }
                let ra = self.rev[a];
                if !self.range(u).contains(&ra) {
                    return Err(format!("arc {a}: rev outside peer {u}'s region"));
                }
                if self.peer_ids[ra] != v || self.rev[ra] != a {
                    return Err(format!("arc {a}: rev not an involution"));
                }
            }
        }
        Ok(())
    }
}

/// The two per-arc payload lanes of the swarm engine, aligned with the
/// topology's arc arena.
#[derive(Clone, Debug)]
pub(crate) struct EdgeLanes {
    /// What each arc's owner uploads along it this round.
    pub outgoing: Vec<f64>,
    /// What each arc's owner received along it last round.
    pub received: Vec<f64>,
}

impl ArcLanes for EdgeLanes {
    fn grow(&mut self, len: usize) {
        self.outgoing.resize(len, 0.0);
        self.received.resize(len, 0.0);
    }
    fn copy_region(&mut self, src: usize, dst: usize, len: usize) {
        self.outgoing.copy_within(src..src + len, dst);
        self.received.copy_within(src..src + len, dst);
    }
    fn shift_up(&mut self, pos: usize, end: usize) {
        self.outgoing.copy_within(pos..end, pos + 1);
        self.received.copy_within(pos..end, pos + 1);
    }
    fn shift_down(&mut self, pos: usize, end: usize) {
        self.outgoing.copy_within(pos + 1..end, pos);
        self.received.copy_within(pos + 1..end, pos);
    }
    fn clear(&mut self, pos: usize) {
        self.outgoing[pos] = 0.0;
        self.received[pos] = 0.0;
    }
}

/// Raw pointer views over the round-pass lanes.
///
/// Plain pointers instead of slices so the deterministic parallel
/// partitioning can hand every worker the same view: disjointness is by
/// agent region (each agent's cells are written only by the worker that
/// owns the agent), not by a contiguous split of the arena — after churn
/// the regions of a contiguous agent range need not be contiguous.
#[derive(Clone, Copy)]
struct RawLanes {
    offsets: *const usize,
    degrees: *const usize,
    rev: *const usize,
    effective: *const f64,
    fixed: *const bool,
    outgoing: *mut f64,
    received: *mut f64,
    u_cur: *mut f64,
    u_prev: *mut f64,
    avg: *mut f64,
}

// SAFETY: the pointers are only dereferenced inside the two round passes,
// where every cell has exactly one writing owner (the worker that owns the
// agent's slot) and cross-worker reads are separated from the writes by a
// barrier. See `run_partitioned` for the pass-by-pass argument.
unsafe impl Send for RawLanes {}
unsafe impl Sync for RawLanes {}

/// Shared per-worker convergence-delta cells for the parallel run.
#[derive(Clone, Copy)]
struct SharedDeltas(*mut f64);
// SAFETY: cell `w` is written only by worker `w`; all reads happen after
// the barrier following the writes.
unsafe impl Send for SharedDeltas {}
unsafe impl Sync for SharedDeltas {}

/// One agent's respond pass (equation (1) over its receive lane).
///
/// SAFETY: the caller must guarantee exclusive access to agent `v`'s arc
/// region of `outgoing` and to no other cells; the agent's `received`
/// region and the per-agent lanes are read-only here and unwritten by any
/// concurrent respond call.
unsafe fn respond_agent(l: &RawLanes, v: usize) {
    if *l.fixed.add(v) {
        // Fixed-split (Sybil) identities re-upload their constant split;
        // the lane already holds it, so there is nothing to recompute.
        return;
    }
    let start = *l.offsets.add(v);
    let d = *l.degrees.add(v);
    // `u_cur[v]` always holds the slot-order sum of the receive region:
    // `deliver_agent` and `refresh_utility` compute it with the same
    // left-to-right fold, so reading the cached value is bit-identical to
    // re-summing the lane and saves a pass over it.
    let total = *l.u_cur.add(v);
    let eff = *l.effective.add(v);
    if total > 0.0 {
        let scale = eff / total;
        for i in 0..d {
            *l.outgoing.add(start + i) = *l.received.add(start + i) * scale;
        }
    } else {
        let even = eff / d.max(1) as f64;
        for i in 0..d {
            *l.outgoing.add(start + i) = even;
        }
    }
}

/// One agent's deliver pass: gather `received[arc] = outgoing[rev[arc]]`
/// and refresh the utility lanes.
///
/// SAFETY: the caller must guarantee exclusive access to agent `v`'s arc
/// region of `received` and to `u_cur[v]`/`u_prev[v]`, plus shared read
/// access to the whole `outgoing` lane (no concurrent writer).
unsafe fn deliver_agent(l: &RawLanes, v: usize) {
    let start = *l.offsets.add(v);
    let d = *l.degrees.add(v);
    *l.u_prev.add(v) = *l.u_cur.add(v);
    let mut sum = 0.0f64;
    for i in 0..d {
        let x = *l.outgoing.add(*l.rev.add(start + i));
        *l.received.add(start + i) = x;
        sum += x;
    }
    *l.u_cur.add(v) = sum;
}

/// The struct-of-arrays swarm engine.
///
/// Slot-indexed: agent ids are stable slot indices; departed agents leave
/// zeroed slots behind that the membership layer recycles through a free
/// list (see [`crate::membership`]). The legacy [`crate::Swarm`] API is a
/// thin facade over this type.
#[derive(Clone, Debug)]
pub struct SoaSwarm {
    pub(crate) topo: CsrTopology,
    pub(crate) lanes: EdgeLanes,
    /// True upload capacity `w_v` per slot.
    pub(crate) capacities: Vec<f64>,
    /// Capacity the protocol *plays* (equals `capacities` unless the agent
    /// misreports).
    pub(crate) effective: Vec<f64>,
    /// Fixed-split (Sybil) slots: the send lane is constant.
    pub(crate) fixed: Vec<bool>,
    /// Live mask; dead slots have degree 0 and zeroed lanes.
    pub(crate) alive: Vec<bool>,
    /// `U_v(t)`: this round's utility per slot.
    pub(crate) u_cur: Vec<f64>,
    /// `U_v(t-1)`, for the cycle-averaged convergence check.
    pub(crate) u_prev: Vec<f64>,
    /// Scratch lane for the pre-step cycle averages (no per-round alloc).
    pub(crate) avg_scratch: Vec<f64>,
    /// Recycled slots, most recently freed last.
    pub(crate) free: Vec<AgentId>,
    /// Live agent count.
    pub(crate) live: usize,
    pub(crate) round: usize,
}

impl SoaSwarm {
    /// Build from a weighted topology; every agent honest.
    pub fn new(g: &Graph) -> Self {
        Self::with_strategies(g, |_| Strategy::Honest)
    }

    /// Build assigning each agent a strategy (same validity asserts as the
    /// legacy per-agent constructor).
    pub fn with_strategies(g: &Graph, strategy: impl Fn(AgentId) -> Strategy) -> Self {
        let n = g.n();
        let topo = CsrTopology::from_graph(g);
        let w = g.weights_f64();
        let mut lanes = EdgeLanes {
            outgoing: vec![0.0; topo.arena_len()],
            received: vec![0.0; topo.arena_len()],
        };
        let mut effective = vec![0.0; n];
        let mut fixed = vec![false; n];
        for v in 0..n {
            let deg = topo.degree(v);
            let d = deg.max(1) as f64;
            let r = topo.range(v);
            match strategy(v) {
                Strategy::Honest => {
                    effective[v] = w[v];
                    let even = w[v] / d;
                    for a in r {
                        lanes.outgoing[a] = even;
                    }
                }
                Strategy::Sybil { w1, w2 } => {
                    assert_eq!(deg, 2, "ring Sybil attack needs degree 2");
                    effective[v] = w[v];
                    fixed[v] = true;
                    lanes.outgoing[r.start] = w1;
                    lanes.outgoing[r.start + 1] = w2;
                }
                Strategy::Misreport { reported } => {
                    assert!(
                        reported >= 0.0 && reported <= w[v],
                        "reported capacity must lie in [0, w_v]"
                    );
                    effective[v] = reported;
                    let even = reported / d;
                    for a in r {
                        lanes.outgoing[a] = even;
                    }
                }
            }
        }
        let mut swarm = SoaSwarm {
            topo,
            lanes,
            capacities: w,
            effective,
            fixed,
            alive: vec![true; n],
            u_cur: vec![0.0; n],
            u_prev: vec![0.0; n],
            avg_scratch: vec![0.0; n],
            free: Vec::new(),
            live: n,
            round: 0,
        };
        swarm.deliver();
        swarm
    }

    /// Number of agent slots (live + recycled).
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.topo.n_slots()
    }

    /// Number of live agents.
    #[inline]
    pub fn live_agents(&self) -> usize {
        self.live
    }

    /// Whether slot `v` currently hosts a live agent.
    #[inline]
    pub fn is_alive(&self, v: AgentId) -> bool {
        self.alive[v]
    }

    /// Upload capacity of slot `v` (0 for recycled slots).
    #[inline]
    pub fn capacity(&self, v: AgentId) -> f64 {
        self.capacities[v]
    }

    /// Upload capacities per slot.
    #[inline]
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Degree of slot `v`.
    #[inline]
    pub fn degree(&self, v: AgentId) -> usize {
        self.topo.degree(v)
    }

    /// Sorted peer ids of slot `v`.
    #[inline]
    pub fn peers(&self, v: AgentId) -> &[AgentId] {
        self.topo.peers(v)
    }

    /// The shared CSR topology.
    #[inline]
    pub fn topology(&self) -> &CsrTopology {
        &self.topo
    }

    /// Receive lane of slot `v` (peer-slot order).
    #[inline]
    pub fn received_of(&self, v: AgentId) -> &[f64] {
        &self.lanes.received[self.topo.range(v)]
    }

    /// Send lane of slot `v` (peer-slot order).
    #[inline]
    pub fn outgoing_of(&self, v: AgentId) -> &[f64] {
        &self.lanes.outgoing[self.topo.range(v)]
    }

    /// Current utilities `U_v(t)` per slot (0 for recycled slots).
    pub fn utilities(&self) -> Vec<f64> {
        self.u_cur.clone()
    }

    /// Utilities averaged over the last two rounds (stable under the
    /// period-2 oscillation bipartite topologies can exhibit).
    pub fn averaged_utilities(&self) -> Vec<f64> {
        self.u_cur
            .iter()
            .zip(&self.u_prev)
            .map(|(a, p)| 0.5 * (a + p))
            .collect()
    }

    /// Rounds executed so far.
    #[inline]
    pub fn round(&self) -> usize {
        self.round
    }

    fn raw(&mut self) -> RawLanes {
        RawLanes {
            offsets: self.topo.offsets.as_ptr(),
            degrees: self.topo.degrees.as_ptr(),
            rev: self.topo.rev.as_ptr(),
            effective: self.effective.as_ptr(),
            fixed: self.fixed.as_ptr(),
            outgoing: self.lanes.outgoing.as_mut_ptr(),
            received: self.lanes.received.as_mut_ptr(),
            u_cur: self.u_cur.as_mut_ptr(),
            u_prev: self.u_prev.as_mut_ptr(),
            avg: self.avg_scratch.as_mut_ptr(),
        }
    }

    /// Re-derive the cached utility `u_cur[v]` from the receive lane in
    /// slot order (the same left-to-right sum `deliver` computes). Needed
    /// after membership edits change a live agent's receive region.
    pub(crate) fn refresh_utility(&mut self, v: AgentId) {
        self.u_cur[v] = self.lanes.received[self.topo.range(v)].iter().sum();
    }

    /// The deliver pass alone (used once at construction and after
    /// membership edits that must refresh receipts).
    pub(crate) fn deliver(&mut self) {
        let l = self.raw();
        for v in 0..self.topo.n_slots() {
            // SAFETY: sequential loop — each agent's cells are written
            // exactly once, with no concurrent access.
            unsafe { deliver_agent(&l, v) }
        }
    }

    /// One protocol round: respond, then deliver. Allocation-free.
    pub fn step(&mut self) {
        let mut sp = prs_trace::span("p2psim", PSPAN_ROUND);
        let r = self.round;
        sp.attr("round", || r.to_string());
        let l = self.raw();
        let n = self.topo.n_slots();
        for v in 0..n {
            // SAFETY: sequential loop — exclusive access trivially holds.
            unsafe { respond_agent(&l, v) }
        }
        for v in 0..n {
            // SAFETY: as above; `outgoing` is no longer written this round.
            unsafe { deliver_agent(&l, v) }
        }
        self.round += 1;
    }

    /// Run until the cycle-averaged utilities stop moving (or
    /// `cfg.max_rounds`). Bit-identical to the legacy `Swarm::run` loop;
    /// the steady-state path performs no heap allocation (the convergence
    /// averages live in a pre-sized scratch lane).
    pub fn run(&mut self, cfg: &SwarmConfig) -> SwarmMetrics {
        let mut sp = prs_trace::span("p2psim", "swarm_run");
        let agents = self.live;
        sp.attr("agents", || agents.to_string());
        let mut checkpoint = 16usize;
        let mut trace = Vec::new();
        let mut converged = false;
        let mut rounds = 0usize;
        if cfg.record_trace {
            trace.push(self.utilities());
        }
        let slots = self.topo.n_slots();
        // Prime the scratch lane with the pre-loop cycle averages; after
        // each round the delta fold writes the fresh averages back, so the
        // next iteration's "before" snapshot needs no separate pass.
        for v in 0..slots {
            self.avg_scratch[v] = 0.5 * (self.u_cur[v] + self.u_prev[v]);
        }
        for _ in 0..cfg.max_rounds {
            self.step();
            rounds += 1;
            if cfg.record_trace {
                trace.push(self.utilities());
            }
            let mut delta = 0.0f64;
            for v in 0..slots {
                let after = 0.5 * (self.u_cur[v] + self.u_prev[v]);
                delta = delta.max((self.avg_scratch[v] - after).abs() / (1.0 + after.abs()));
                self.avg_scratch[v] = after;
            }
            if rounds == checkpoint {
                checkpoint = checkpoint.saturating_mul(2);
                if prs_trace::is_enabled() {
                    let spread = self.fairness_spread();
                    let live = self.live;
                    prs_trace::instant("p2psim", PSPAN_CHECKPOINT, || {
                        vec![
                            ("round", rounds.to_string()),
                            ("delta", format!("{delta:e}")),
                            ("live", live.to_string()),
                            ("fairness_spread", format!("{spread:.6}")),
                        ]
                    });
                }
            }
            if delta <= cfg.tol {
                converged = true;
                break;
            }
        }
        sp.attr("rounds", || rounds.to_string());
        sp.attr("converged", || converged.to_string());
        SwarmMetrics {
            rounds,
            converged,
            utilities: self.averaged_utilities(),
            trace,
        }
    }

    /// In-vivo incentive-ratio proxy: the spread `max / min` of the
    /// cycle-averaged download-per-capacity ratios `Ū_v / w_v` over live
    /// agents with positive capacity. Reported at convergence checkpoints
    /// so churn runs expose how far any agent's return strays from the
    /// common rate; `NaN` when no live agent qualifies.
    pub fn fairness_spread(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for v in 0..self.topo.n_slots() {
            if self.alive[v] && self.capacities[v] > 0.0 {
                let r = 0.5 * (self.u_cur[v] + self.u_prev[v]) / self.capacities[v];
                lo = lo.min(r);
                hi = hi.max(r);
            }
        }
        if lo.is_finite() && lo > 0.0 {
            hi / lo
        } else {
            f64::NAN
        }
    }

    /// Deterministic parallel run: agents are partitioned into `threads`
    /// contiguous slot ranges, each owned by one worker for the whole run.
    ///
    /// Per round, two barrier-separated passes execute exactly the
    /// sequential per-agent kernels; every lane cell is written by exactly
    /// one worker (the owner of its agent), cross-worker reads of the send
    /// lane happen only after the barrier that ends the respond pass, and
    /// the convergence delta is a max-reduction over per-worker partials —
    /// order-independent for the NaN-free values the protocol produces.
    /// The result is therefore bit-identical to [`SoaSwarm::run`] for any
    /// thread count, which `soa::tests::partitioned_run_is_bit_identical`
    /// pins.
    ///
    /// Falls back to the sequential loop for one thread or when
    /// `cfg.record_trace` asks for per-round snapshots.
    // prs-lint: allow(panic, reason = "poison/join propagation in the partitioned fan-out: a worker panic already aborted the run")
    pub fn run_partitioned(&mut self, cfg: &SwarmConfig, threads: usize) -> SwarmMetrics {
        let slots = self.topo.n_slots();
        let threads = threads.max(1).min(slots.max(1));
        if threads == 1 || cfg.record_trace {
            return self.run(cfg);
        }
        let mut sp = prs_trace::span("p2psim", "swarm_run");
        let agents = self.live;
        sp.attr("agents", || agents.to_string());
        sp.attr("workers", || threads.to_string());

        let chunk = slots.div_ceil(threads);
        let ranges: Vec<Range<usize>> = (0..threads)
            .map(|w| (w * chunk).min(slots)..((w + 1) * chunk).min(slots))
            .collect();
        let l = self.raw();
        let mut deltas = vec![0.0f64; threads];
        let dp = SharedDeltas(deltas.as_mut_ptr());
        let barrier = std::sync::Barrier::new(threads);
        let (tol, max_rounds) = (cfg.tol, cfg.max_rounds);
        let outcome = std::sync::Mutex::new((0usize, false));

        crossbeam::scope(|scope| {
            let (barrier, outcome, ranges) = (&barrier, &outcome, &ranges);
            for w in 0..threads {
                let range = ranges[w].clone();
                scope.spawn(move |_| {
                    // Bind the Send wrappers whole: edition-2021 disjoint
                    // capture would otherwise capture their raw-pointer
                    // fields directly, which are not `Send`.
                    let (l, dp) = (l, dp);
                    {
                        let mut wsp = prs_trace::span("p2psim", "par_worker");
                        wsp.attr("worker", || w.to_string());
                        let mut rounds = 0usize;
                        let mut converged = false;
                        let mut checkpoint = 16usize;
                        // Prime the owned `avg` cells with the pre-loop
                        // cycle averages; each deliver pass writes the
                        // fresh averages back, mirroring the fused
                        // sequential loop in `run`.
                        for v in range.clone() {
                            // SAFETY: this worker owns slot range `range`;
                            // the `avg`/`u_*` cells of owned agents have
                            // no other reader or writer before the spawn
                            // scope joins.
                            unsafe {
                                *l.avg.add(v) = 0.5 * (*l.u_cur.add(v) + *l.u_prev.add(v));
                            }
                        }
                        for _ in 0..max_rounds {
                            for v in range.clone() {
                                // SAFETY: this worker owns slot range
                                // `range`; the `outgoing` region and
                                // `u_*` cells of each owned agent have no
                                // other writer, and `received` regions
                                // read here were last written by this
                                // same worker's previous deliver pass
                                // (barrier-separated).
                                unsafe { respond_agent(&l, v) }
                            }
                            barrier.wait();
                            let mut local = 0.0f64;
                            for v in range.clone() {
                                // SAFETY: exclusive access to the owned
                                // agents' `received`/`u_*`/`avg` cells;
                                // `outgoing` is read-shared — the barrier
                                // above ends all respond-pass writes.
                                unsafe {
                                    deliver_agent(&l, v);
                                    let after =
                                        0.5 * (*l.u_cur.add(v) + *l.u_prev.add(v));
                                    local = local
                                        .max((*l.avg.add(v) - after).abs() / (1.0 + after.abs()));
                                    *l.avg.add(v) = after;
                                }
                            }
                            // SAFETY: cell `w` is this worker's partial;
                            // peers read it only after the next barrier.
                            unsafe { *dp.0.add(w) = local };
                            barrier.wait();
                            rounds += 1;
                            let mut delta = 0.0f64;
                            for t in 0..threads {
                                // SAFETY: all partials were written before
                                // the barrier just crossed; no writer
                                // touches them until every worker passes
                                // the *next* first barrier, which cannot
                                // happen before this read.
                                delta = delta.max(unsafe { *dp.0.add(t) });
                            }
                            if w == 0 && rounds == checkpoint {
                                checkpoint = checkpoint.saturating_mul(2);
                                if prs_trace::is_enabled() {
                                    prs_trace::instant("p2psim", PSPAN_CHECKPOINT, || {
                                        vec![
                                            ("round", rounds.to_string()),
                                            ("delta", format!("{delta:e}")),
                                        ]
                                    });
                                }
                            }
                            if delta <= tol {
                                converged = true;
                                break;
                            }
                        }
                        if w == 0 {
                            *outcome.lock().expect("poisoned") = (rounds, converged);
                        }
                        wsp.attr("rounds", || rounds.to_string());
                    }
                    // Last act: the scope join can race TLS destructors.
                    prs_trace::flush_thread();
                });
            }
        })
        .expect("swarm worker panicked");

        let (rounds, converged) = *outcome.lock().expect("poisoned");
        self.round += rounds;
        sp.attr("rounds", || rounds.to_string());
        sp.attr("converged", || converged.to_string());
        SwarmMetrics {
            rounds,
            converged,
            utilities: self.averaged_utilities(),
            trace: Vec::new(),
        }
    }

    /// Snapshot the live topology as a [`Graph`] (capacities become exact
    /// rationals), for closed-form BD cross-checks. Returns the graph and
    /// the slot id behind each compacted vertex.
    pub fn to_graph(&self) -> Result<(Graph, Vec<AgentId>), GraphError> {
        let slot_of: Vec<AgentId> = (0..self.topo.n_slots())
            .filter(|&v| self.alive[v])
            .collect();
        let mut compact = vec![usize::MAX; self.topo.n_slots()];
        for (i, &v) in slot_of.iter().enumerate() {
            compact[v] = i;
        }
        let weights = slot_of
            .iter()
            .map(|&v| prs_numeric::Rational::from_f64(self.capacities[v]))
            .collect();
        let mut edges = Vec::new();
        for &v in &slot_of {
            for &u in self.topo.peers(v) {
                if v < u {
                    edges.push((compact[v], compact[u]));
                }
            }
        }
        Graph::new(weights, &edges).map(|g| (g, slot_of))
    }

    /// Full structural invariants (topology plus lane/slot bookkeeping).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.topo.check()?;
        let n = self.topo.n_slots();
        let arena = self.topo.arena_len();
        if self.lanes.outgoing.len() != arena || self.lanes.received.len() != arena {
            return Err("edge lanes out of sync with the arc arena".into());
        }
        for lane in [
            &self.capacities,
            &self.effective,
            &self.u_cur,
            &self.u_prev,
            &self.avg_scratch,
        ] {
            if lane.len() != n {
                return Err("per-agent lane out of sync with the slot count".into());
            }
        }
        if self.alive.len() != n || self.fixed.len() != n {
            return Err("per-agent mask out of sync with the slot count".into());
        }
        if self.alive.iter().filter(|&&a| a).count() != self.live {
            return Err("live counter out of sync with the alive mask".into());
        }
        let mut free_seen = vec![false; n];
        for &v in &self.free {
            if v >= n || self.alive[v] {
                return Err(format!("free list holds live or unknown slot {v}"));
            }
            if free_seen[v] {
                return Err(format!("free list holds slot {v} twice"));
            }
            free_seen[v] = true;
        }
        for v in 0..n {
            if !self.alive[v] {
                if !free_seen[v] {
                    return Err(format!("dead slot {v} missing from the free list"));
                }
                if self.topo.degree(v) != 0 {
                    return Err(format!("dead slot {v} still has edges"));
                }
                if self.capacities[v] != 0.0 || self.u_cur[v] != 0.0 || self.u_prev[v] != 0.0 {
                    return Err(format!("dead slot {v} has non-zero lanes"));
                }
            } else {
                for &u in self.topo.peers(v) {
                    if !self.alive[u] {
                        return Err(format!("live slot {v} adjacent to dead slot {u}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_graph::{builders, random};
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn topology_matches_graph_adjacency() {
        let g = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
        let t = CsrTopology::from_graph(&g);
        assert_eq!(t.n_slots(), 5);
        assert_eq!(t.arena_len(), 10);
        for v in 0..5 {
            assert_eq!(t.peers(v), g.neighbors(v));
            for a in t.range(v) {
                assert_eq!(t.peer_at(t.rev(a)), v, "rev points back");
                assert_eq!(t.rev(t.rev(a)), a, "rev is an involution");
            }
        }
        t.check().unwrap();
    }

    #[test]
    fn insert_and_remove_edges_keep_invariants() {
        let g = builders::ring(vec![int(2); 6]).unwrap();
        let mut t = CsrTopology::from_graph(&g);
        // Chords force region growth + relocation.
        t.insert_edge(0, 3, &mut ()).unwrap();
        t.insert_edge(1, 4, &mut ()).unwrap();
        t.insert_edge(0, 2, &mut ()).unwrap();
        t.check().unwrap();
        assert_eq!(t.peers(0), &[1, 2, 3, 5]);
        assert_eq!(
            t.insert_edge(0, 3, &mut ()),
            Err(TopologyError::DuplicateEdge(0, 3))
        );
        t.remove_edge(0, 3, &mut ()).unwrap();
        t.remove_edge(0, 1, &mut ()).unwrap();
        t.check().unwrap();
        assert_eq!(t.peers(0), &[2, 5]);
        assert_eq!(
            t.remove_edge(0, 3, &mut ()),
            Err(TopologyError::MissingEdge(0, 3))
        );
        assert_eq!(t.insert_edge(2, 2, &mut ()), Err(TopologyError::SelfLoop(2)));
    }

    #[test]
    fn lanes_follow_region_edits() {
        let g = builders::ring(vec![int(1); 4]).unwrap();
        let mut t = CsrTopology::from_graph(&g);
        let mut lanes = EdgeLanes {
            outgoing: (0..t.arena_len()).map(|a| a as f64).collect(),
            received: vec![0.0; t.arena_len()],
        };
        // Ring peers of 0 are [1, 3] with arcs 0, 1; insert 0–2, which
        // relocates region 0 and shift-inserts 2 between them.
        let before: Vec<f64> = t.range(0).map(|a| lanes.outgoing[a]).collect();
        t.insert_edge(0, 2, &mut lanes).unwrap();
        t.check().unwrap();
        assert_eq!(t.peers(0), &[1, 2, 3]);
        let r = t.range(0);
        assert_eq!(lanes.outgoing[r.start], before[0]);
        assert_eq!(lanes.outgoing[r.start + 1], 0.0, "new arc cleared");
        assert_eq!(lanes.outgoing[r.start + 2], before[1]);
    }

    #[test]
    fn conservation_and_convergence_match_bd() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [4usize, 6, 9] {
            let g = random::random_ring(&mut rng, n, 1, 10);
            let total: f64 = g.weights_f64().iter().sum();
            let bd = prs_bd::decompose(&g).unwrap();
            let target: Vec<f64> = bd.utilities(&g).iter().map(|u| u.to_f64()).collect();
            let mut s = SoaSwarm::new(&g);
            for _ in 0..10 {
                s.step();
                let got: f64 = s.utilities().iter().sum();
                assert!((got - total).abs() < 1e-9, "capacity leaked");
            }
            let m = s.run(&SwarmConfig::default());
            assert!(m.converged);
            for (got, want) in m.utilities.iter().zip(&target) {
                assert!((got - want).abs() < 1e-6, "{got} vs BD {want}");
            }
        }
    }

    #[test]
    fn partitioned_run_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [5usize, 12, 33] {
            let g = random::random_ring(&mut rng, n, 1, 9);
            let cfg = SwarmConfig::default();
            let mut seq = SoaSwarm::new(&g);
            let m_seq = seq.run(&cfg);
            for threads in [2usize, 3, 7] {
                let mut par = SoaSwarm::new(&g);
                let m_par = par.run_partitioned(&cfg, threads);
                assert_eq!(m_par.rounds, m_seq.rounds, "n={n} threads={threads}");
                assert_eq!(m_par.converged, m_seq.converged);
                assert_eq!(
                    bits(&m_par.utilities),
                    bits(&m_seq.utilities),
                    "n={n} threads={threads}: utilities not bit-identical"
                );
                assert_eq!(bits(&par.lanes.outgoing), bits(&seq.lanes.outgoing));
            }
        }
    }

    #[test]
    fn to_graph_round_trips() {
        let g = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
        let s = SoaSwarm::new(&g);
        let (g2, slot_of) = s.to_graph().unwrap();
        assert_eq!(g2.n(), 5);
        assert_eq!(slot_of, vec![0, 1, 2, 3, 4]);
        assert_eq!(g2.weights(), g.weights());
        for v in 0..5 {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn fairness_spread_is_one_at_uniform_equilibrium() {
        let g = builders::uniform_ring(6, int(2)).unwrap();
        let mut s = SoaSwarm::new(&g);
        s.run(&SwarmConfig::default());
        let spread = s.fairness_spread();
        assert!((spread - 1.0).abs() < 1e-9, "spread {spread}");
    }
}
