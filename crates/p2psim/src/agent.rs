//! Per-agent protocol state and strategies.

/// Agent identifier within a swarm.
pub type AgentId = usize;

/// How an agent plays the protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Strategy {
    /// Follow the proportional response protocol faithfully.
    Honest,
    /// Sybil attack (Definition 7 on a ring): present one fictitious
    /// identity per neighbor, with the agent's capacity split `w₁ + w₂`
    /// between them. Identity 1 faces the lower-numbered peer slot.
    ///
    /// Each identity has a single neighbor, so proportional response makes
    /// it upload its whole sub-capacity to that neighbor every round — the
    /// protocol-level realization of the split path `P_v(w₁, w₂)`.
    Sybil {
        /// Capacity assigned to the identity facing peer slot 0.
        w1: f64,
        /// Capacity assigned to the identity facing peer slot 1.
        w2: f64,
    },
    /// Capacity misreporting (the deviation of Cheng et al. [7] behind
    /// Theorem 10): play the protocol faithfully but pretend to own
    /// `reported ≤ w_v` upload capacity, hoarding the rest. Theorem 10 says
    /// this can never raise the agent's download — verified at protocol
    /// level by the E13 suite.
    Misreport {
        /// The pretended capacity, `0 ≤ reported ≤ w_v`.
        reported: f64,
    },
}

/// Protocol state of one agent.
#[derive(Clone, Debug)]
pub struct AgentState {
    /// Upload capacity (the weight `w_v`).
    pub capacity: f64,
    /// Peer ids, sorted.
    pub peers: Vec<AgentId>,
    /// What this agent received from each peer last round (peer-slot order).
    pub received: Vec<f64>,
    /// What this agent will upload to each peer this round.
    pub outgoing: Vec<f64>,
    /// Strategy in play.
    pub strategy: Strategy,
}

impl AgentState {
    /// Fresh state with the Definition 1 even split.
    pub fn new(capacity: f64, peers: Vec<AgentId>, strategy: Strategy) -> Self {
        let d = peers.len().max(1) as f64;
        let initial = match &strategy {
            Strategy::Honest => vec![capacity / d; peers.len()],
            Strategy::Sybil { w1, w2 } => {
                assert_eq!(peers.len(), 2, "ring Sybil attack needs degree 2");
                vec![*w1, *w2]
            }
            Strategy::Misreport { reported } => {
                assert!(
                    *reported >= 0.0 && *reported <= capacity,
                    "reported capacity must lie in [0, w_v]"
                );
                vec![*reported / d; peers.len()]
            }
        };
        AgentState {
            capacity,
            received: vec![0.0; peers.len()],
            outgoing: initial,
            peers,
            strategy,
        }
    }

    /// Total download this round — the utility `U_v(t)`.
    pub fn utility(&self) -> f64 {
        self.received.iter().sum()
    }

    /// Compute next-round uploads from this round's receipts
    /// (equation (1); Sybil identities respond per identity).
    pub fn respond(&mut self) {
        match &self.strategy {
            Strategy::Honest => {
                let total: f64 = self.received.iter().sum();
                if total > 0.0 {
                    let scale = self.capacity / total;
                    for (out, r) in self.outgoing.iter_mut().zip(&self.received) {
                        *out = r * scale;
                    }
                } else {
                    let d = self.peers.len().max(1) as f64;
                    for out in self.outgoing.iter_mut() {
                        *out = self.capacity / d;
                    }
                }
            }
            Strategy::Sybil { w1, w2 } => {
                // Identity i has exactly one neighbor: proportional response
                // with a single peer uploads the identity's whole capacity
                // there (or nothing if the identity owns nothing).
                self.outgoing[0] = *w1;
                self.outgoing[1] = *w2;
            }
            Strategy::Misreport { reported } => {
                let total: f64 = self.received.iter().sum();
                if total > 0.0 {
                    let scale = reported / total;
                    for (out, r) in self.outgoing.iter_mut().zip(&self.received) {
                        *out = r * scale;
                    }
                } else {
                    let d = self.peers.len().max(1) as f64;
                    for out in self.outgoing.iter_mut() {
                        *out = reported / d;
                    }
                }
            }
        }
    }

    // prs-lint: allow(panic, reason = "Swarm only routes messages along existing edges; an unknown peer is a simulator wiring bug")
    /// Slot of peer `u` in this agent's peer list.
    pub fn slot_of(&self, u: AgentId) -> usize {
        self.peers
            .binary_search(&u)
            .expect("peer not in neighbor list")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_even_split_initially() {
        let a = AgentState::new(6.0, vec![1, 2, 3], Strategy::Honest);
        assert_eq!(a.outgoing, vec![2.0, 2.0, 2.0]);
        assert_eq!(a.utility(), 0.0);
    }

    #[test]
    fn honest_respond_is_proportional() {
        let mut a = AgentState::new(10.0, vec![1, 2], Strategy::Honest);
        a.received = vec![3.0, 1.0];
        a.respond();
        assert_eq!(a.outgoing, vec![7.5, 2.5]);
        let total: f64 = a.outgoing.iter().sum();
        assert!((total - 10.0).abs() < 1e-12, "capacity exhausted");
    }

    #[test]
    fn honest_zero_receipts_falls_back_to_even() {
        let mut a = AgentState::new(4.0, vec![1, 2], Strategy::Honest);
        a.received = vec![0.0, 0.0];
        a.respond();
        assert_eq!(a.outgoing, vec![2.0, 2.0]);
    }

    #[test]
    fn sybil_identities_upload_fixed_split() {
        let mut a = AgentState::new(5.0, vec![4, 9], Strategy::Sybil { w1: 3.5, w2: 1.5 });
        a.received = vec![100.0, 0.1]; // receipts are irrelevant per identity
        a.respond();
        assert_eq!(a.outgoing, vec![3.5, 1.5]);
    }

    #[test]
    #[should_panic(expected = "degree 2")]
    fn sybil_needs_two_peers() {
        AgentState::new(5.0, vec![1], Strategy::Sybil { w1: 2.0, w2: 3.0 });
    }

    #[test]
    fn misreport_scales_to_reported_capacity() {
        let mut a = AgentState::new(10.0, vec![1, 2], Strategy::Misreport { reported: 4.0 });
        a.received = vec![3.0, 1.0];
        a.respond();
        assert_eq!(a.outgoing, vec![3.0, 1.0]); // proportional, summing to 4
        let total: f64 = a.outgoing.iter().sum();
        assert_eq!(total, 4.0);
    }

    #[test]
    #[should_panic(expected = "reported capacity")]
    fn misreport_cannot_exceed_capacity() {
        AgentState::new(2.0, vec![1, 2], Strategy::Misreport { reported: 3.0 });
    }

    #[test]
    fn slot_lookup() {
        let a = AgentState::new(1.0, vec![2, 5, 7], Strategy::Honest);
        assert_eq!(a.slot_of(5), 1);
        assert_eq!(a.slot_of(7), 2);
    }
}
