//! Dynamic membership for the SoA swarm: join, leave, and rewire between
//! rounds, with free-list slot recycling and incremental CSR patching.
//!
//! Events are validated up front and applied atomically — a rejected event
//! leaves the swarm untouched. Joining agents start cold (even-split
//! upload, zero receipts), exactly like a freshly constructed honest
//! agent, so a churned swarm replays bit-identically against a
//! from-scratch reference (see `tests/swarm_soa_equivalence.rs`).
//!
//! The default [`SoaSwarm::reciprocity_rewire`] policy follows Tsoukatos's
//! reciprocity-driven exchange networks: an agent drops the neighbor that
//! reciprocated least last round and reconnects to the two-hop candidate
//! offering the best marginal share of its capacity.

use crate::agent::AgentId;
use crate::soa::SoaSwarm;
use prs_trace::Counter;

/// Span name under the `p2psim` layer (see `span_const_layers`).
const PSPAN_MEMBERSHIP: &str = "membership_apply";

static JOINS: Counter = Counter::new("p2psim.joins");
static LEAVES: Counter = Counter::new("p2psim.leaves");
static REWIRES: Counter = Counter::new("p2psim.rewires");

/// A between-rounds membership change.
#[derive(Clone, Debug, PartialEq)]
pub enum MembershipEvent {
    /// A new agent joins with `capacity`, wired to the given live peers.
    Join {
        /// Upload capacity `w_v` of the newcomer (must be non-negative).
        capacity: f64,
        /// Live agents to connect to (non-empty, no duplicates).
        peers: Vec<AgentId>,
    },
    /// A live agent departs; its slot is recycled.
    Leave {
        /// The departing agent.
        agent: AgentId,
    },
    /// `agent` re-evaluates its neighborhood under the default
    /// reciprocity policy (drop the least-reciprocating neighbor,
    /// reconnect two hops away).
    Rewire {
        /// The agent applying the policy.
        agent: AgentId,
    },
}

/// What applying a [`MembershipEvent`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MembershipOutcome {
    /// A join succeeded; the newcomer lives at this slot.
    Joined(AgentId),
    /// A leave succeeded.
    Left,
    /// A rewire dropped one edge and added another.
    Rewired {
        /// Neighbor dropped (least reciprocating).
        dropped: AgentId,
        /// Two-hop candidate connected instead.
        added: AgentId,
    },
    /// A rewire found no admissible improvement and did nothing.
    NoOp,
}

/// Why a membership event was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MembershipError {
    /// Referenced slot id does not exist.
    UnknownAgent(AgentId),
    /// Referenced slot is not live.
    DeadAgent(AgentId),
    /// A join listed the same peer twice.
    DuplicatePeer(AgentId),
    /// A join listed no peers.
    NoPeers,
    /// Join capacity is negative or non-finite.
    InvalidCapacity,
    /// The event would change the degree of a fixed-split (Sybil) agent,
    /// whose constant lane split is only meaningful at its built degree.
    FixedTopology(AgentId),
    /// A rewire was requested for an isolated agent.
    NoEdges(AgentId),
}

impl std::fmt::Display for MembershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipError::UnknownAgent(v) => write!(f, "unknown agent {v}"),
            MembershipError::DeadAgent(v) => write!(f, "agent {v} already left"),
            MembershipError::DuplicatePeer(v) => write!(f, "peer {v} listed twice"),
            MembershipError::NoPeers => write!(f, "a joining agent needs at least one peer"),
            MembershipError::InvalidCapacity => {
                write!(f, "join capacity must be finite and non-negative")
            }
            MembershipError::FixedTopology(v) => {
                write!(f, "agent {v} has a fixed split; its degree cannot change")
            }
            MembershipError::NoEdges(v) => write!(f, "agent {v} has no edges to rewire"),
        }
    }
}

impl std::error::Error for MembershipError {}

impl SoaSwarm {
    /// A live, in-range slot or the matching error.
    fn live_slot(&self, v: AgentId) -> Result<(), MembershipError> {
        if v >= self.n_slots() {
            return Err(MembershipError::UnknownAgent(v));
        }
        if !self.is_alive(v) {
            return Err(MembershipError::DeadAgent(v));
        }
        Ok(())
    }

    /// Apply one membership event between rounds.
    pub fn apply(&mut self, event: &MembershipEvent) -> Result<MembershipOutcome, MembershipError> {
        let mut sp = prs_trace::span("p2psim", PSPAN_MEMBERSHIP);
        sp.attr("event", || {
            match event {
                MembershipEvent::Join { .. } => "join",
                MembershipEvent::Leave { .. } => "leave",
                MembershipEvent::Rewire { .. } => "rewire",
            }
            .to_string()
        });
        match event {
            MembershipEvent::Join { capacity, peers } => {
                self.join(*capacity, peers).map(MembershipOutcome::Joined)
            }
            MembershipEvent::Leave { agent } => self.leave(*agent).map(|()| MembershipOutcome::Left),
            MembershipEvent::Rewire { agent } => self.reciprocity_rewire(*agent),
        }
    }

    /// Add a new agent with the given capacity and peer set. Recycles a
    /// free slot when one exists (the newest departure first), otherwise
    /// appends a fresh slot. The newcomer uploads an even split and has
    /// received nothing yet; all its arcs start cold on both sides.
    pub fn join(&mut self, capacity: f64, peers: &[AgentId]) -> Result<AgentId, MembershipError> {
        if !capacity.is_finite() || capacity < 0.0 {
            return Err(MembershipError::InvalidCapacity);
        }
        if peers.is_empty() {
            return Err(MembershipError::NoPeers);
        }
        for (i, &u) in peers.iter().enumerate() {
            self.live_slot(u)?;
            if self.fixed[u] {
                return Err(MembershipError::FixedTopology(u));
            }
            if peers[..i].contains(&u) {
                return Err(MembershipError::DuplicatePeer(u));
            }
        }
        let v = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = self.topo.add_slot(peers.len(), &mut self.lanes);
                self.capacities.push(0.0);
                self.effective.push(0.0);
                self.fixed.push(false);
                self.alive.push(false);
                self.u_cur.push(0.0);
                self.u_prev.push(0.0);
                self.avg_scratch.push(0.0);
                slot
            }
        };
        for &u in peers {
            // Validated above: distinct live non-fixed peers, v is fresh,
            // so insertion cannot fail.
            let _ = self.topo.insert_edge(v, u, &mut self.lanes);
        }
        let even = capacity / peers.len() as f64;
        for a in self.topo.range(v) {
            self.lanes.outgoing[a] = even;
        }
        self.capacities[v] = capacity;
        self.effective[v] = capacity;
        self.alive[v] = true;
        self.live += 1;
        // Cached utilities must keep matching the (edited) receive lanes.
        self.refresh_utility(v);
        for &u in peers {
            self.refresh_utility(u);
        }
        JOINS.add(1);
        Ok(v)
    }

    /// Remove a live agent: detach every edge, zero its lanes, and push
    /// the slot onto the free list for recycling. The slot id stays
    /// stable — neighbors' ids never shift. Fixed-split *neighbors* block
    /// the leave (their degree would change); a fixed agent may itself
    /// leave, abandoning its attack.
    pub fn leave(&mut self, agent: AgentId) -> Result<(), MembershipError> {
        self.live_slot(agent)?;
        for &u in self.topo.peers(agent) {
            if self.fixed[u] {
                return Err(MembershipError::FixedTopology(u));
            }
        }
        while self.topo.degree(agent) > 0 {
            let u = self.topo.peers(agent)[0];
            // Both endpoints exist and are adjacent: cannot fail.
            let _ = self.topo.remove_edge(agent, u, &mut self.lanes);
            // The ex-peer lost a receipt cell: refresh its cached utility.
            self.refresh_utility(u);
        }
        self.capacities[agent] = 0.0;
        self.effective[agent] = 0.0;
        self.fixed[agent] = false;
        self.u_cur[agent] = 0.0;
        self.u_prev[agent] = 0.0;
        self.avg_scratch[agent] = 0.0;
        self.alive[agent] = false;
        self.live -= 1;
        self.free.push(agent);
        LEAVES.add(1);
        Ok(())
    }

    /// Tsoukatos-style reciprocity rewiring for one agent: drop the
    /// neighbor whose last-round upload to us was smallest (ties → lowest
    /// id), and reconnect to the two-hop candidate `w` maximizing the
    /// marginal share `w_cap / (deg(w) + 1)` (ties → lowest id). Fixed
    /// agents never initiate, are never dropped, and are never targeted.
    /// Returns [`MembershipOutcome::NoOp`] when no admissible candidate
    /// exists or the agent has only fixed neighbors.
    pub fn reciprocity_rewire(
        &mut self,
        agent: AgentId,
    ) -> Result<MembershipOutcome, MembershipError> {
        self.live_slot(agent)?;
        if self.fixed[agent] {
            return Err(MembershipError::FixedTopology(agent));
        }
        if self.topo.degree(agent) == 0 {
            return Err(MembershipError::NoEdges(agent));
        }
        // Weakest link: least reciprocating non-fixed neighbor.
        let mut dropped: Option<(f64, AgentId)> = None;
        let r = self.topo.range(agent);
        for a in r {
            let u = self.topo.peer_at(a);
            if self.fixed[u] {
                continue;
            }
            let got = self.lanes.received[a];
            // Slot order is ascending peer id, so strict `<` keeps the
            // lowest id on ties.
            if dropped.is_none_or(|(best, _)| got < best) {
                dropped = Some((got, u));
            }
        }
        let Some((_, drop_peer)) = dropped else {
            return Ok(MembershipOutcome::NoOp);
        };
        // Best two-hop candidate: alive, non-fixed, not already adjacent,
        // not ourselves, maximizing marginal capacity share.
        let mut added: Option<(f64, AgentId)> = None;
        for &u in self.topo.peers(agent) {
            for &w in self.topo.peers(u) {
                if w == agent || self.fixed[w] || !self.alive[w] {
                    continue;
                }
                if self.topo.find_arc(agent, w).is_some() {
                    continue;
                }
                let share = self.capacities[w] / (self.topo.degree(w) + 1) as f64;
                let better = match added {
                    None => true,
                    Some((best, best_id)) => {
                        share > best || (share == best && w < best_id)
                    }
                };
                if better {
                    added = Some((share, w));
                }
            }
        }
        let Some((_, add_peer)) = added else {
            return Ok(MembershipOutcome::NoOp);
        };
        // Both operations validated: cannot fail.
        let _ = self.topo.remove_edge(agent, drop_peer, &mut self.lanes);
        let _ = self.topo.insert_edge(agent, add_peer, &mut self.lanes);
        for v in [agent, drop_peer, add_peer] {
            self.refresh_utility(v);
        }
        REWIRES.add(1);
        Ok(MembershipOutcome::Rewired {
            dropped: drop_peer,
            added: add_peer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Strategy;
    use crate::swarm::SwarmConfig;
    use prs_graph::builders;
    use prs_numeric::int;

    fn ring6() -> SoaSwarm {
        let g = builders::uniform_ring(6, int(2)).unwrap();
        SoaSwarm::new(&g)
    }

    #[test]
    fn join_recycles_the_newest_freed_slot() {
        let mut s = ring6();
        s.leave(2).unwrap();
        s.leave(4).unwrap();
        assert_eq!(s.live_agents(), 4);
        let v = s.join(3.0, &[1, 3]).unwrap();
        assert_eq!(v, 4, "newest departure recycled first");
        let v2 = s.join(1.0, &[0]).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(s.n_slots(), 6, "no slot growth while the free list has room");
        let v3 = s.join(1.0, &[0]).unwrap();
        assert_eq!(v3, 6, "free list empty: fresh slot appended");
        s.check_invariants().unwrap();
    }

    #[test]
    fn join_starts_cold_and_even() {
        let mut s = ring6();
        let v = s.join(4.0, &[0, 3]).unwrap();
        assert_eq!(s.peers(v), &[0, 3]);
        assert_eq!(s.outgoing_of(v), &[2.0, 2.0], "even split of capacity 4");
        assert_eq!(s.received_of(v), &[0.0, 0.0]);
        // Peer-side arcs are cold too: 0 has not uploaded to v yet.
        let a = s.topology().find_arc(0, v).unwrap();
        assert_eq!(s.outgoing_of(0)[a - s.topology().range(0).start], 0.0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn validation_is_atomic() {
        let mut s = ring6();
        let before = s.topology().peers(1).to_vec();
        assert_eq!(
            s.join(1.0, &[1, 99]),
            Err(MembershipError::UnknownAgent(99))
        );
        assert_eq!(s.join(1.0, &[1, 1]), Err(MembershipError::DuplicatePeer(1)));
        assert_eq!(s.join(f64::NAN, &[1]), Err(MembershipError::InvalidCapacity));
        assert_eq!(s.join(1.0, &[]), Err(MembershipError::NoPeers));
        assert_eq!(s.topology().peers(1), &before[..], "failed join left no trace");
        assert_eq!(s.n_slots(), 6);
        s.check_invariants().unwrap();
    }

    #[test]
    fn leave_blocks_on_fixed_neighbors_but_fixed_agent_may_leave() {
        let g = builders::ring(vec![int(4), int(2), int(6), int(3)]).unwrap();
        let mut s = SoaSwarm::with_strategies(&g, |v| {
            if v == 0 {
                Strategy::Sybil { w1: 2.5, w2: 1.5 }
            } else {
                Strategy::Honest
            }
        });
        assert_eq!(s.leave(1), Err(MembershipError::FixedTopology(0)));
        // Agent 2 is not adjacent to the fixed agent 0, so it may leave.
        s.leave(2).unwrap();
        s.check_invariants().unwrap();
    }

    #[test]
    fn fixed_agent_leave_abandons_the_attack() {
        let g = builders::ring(vec![int(4), int(2), int(6), int(3), int(5)]).unwrap();
        let mut s = SoaSwarm::with_strategies(&g, |v| {
            if v == 0 {
                Strategy::Sybil { w1: 2.5, w2: 1.5 }
            } else {
                Strategy::Honest
            }
        });
        s.leave(0).unwrap();
        assert_eq!(s.live_agents(), 4);
        assert_eq!(s.degree(0), 0);
        let m = s.run(&SwarmConfig::default());
        assert!(m.converged, "line of honest agents still converges");
        s.check_invariants().unwrap();
    }

    #[test]
    fn reciprocity_rewire_drops_weakest_and_adds_best_two_hop() {
        // Ring 0–1–2–3–4–5 with distinct capacities; after one round each
        // agent's receipts differ, so the weakest link is well-defined.
        let g = builders::ring(vec![int(8), int(1), int(8), int(4), int(8), int(4)]).unwrap();
        let mut s = SoaSwarm::new(&g);
        s.step();
        // Agent 0's neighbors are 1 (capacity 1, sends 0.5) and 5
        // (capacity 4, sends 2.0): drop 1. Two-hop candidates through the
        // remaining topology include 2 (via 1) and 4 (via 5), both with
        // capacity 8 and degree 2, share 8/3 each: tie broken to 2.
        let out = s.reciprocity_rewire(0).unwrap();
        assert_eq!(
            out,
            MembershipOutcome::Rewired {
                dropped: 1,
                added: 2
            }
        );
        assert_eq!(s.peers(0), &[2, 5]);
        s.check_invariants().unwrap();
    }

    #[test]
    fn rewire_errors_and_noops() {
        let mut s = ring6();
        assert_eq!(
            s.reciprocity_rewire(9),
            Err(MembershipError::UnknownAgent(9))
        );
        // A triangle has no two-hop candidate that is not already a peer.
        let g = builders::ring(vec![int(1), int(2), int(3)]).unwrap();
        let mut t = SoaSwarm::new(&g);
        t.step();
        assert_eq!(t.reciprocity_rewire(0).unwrap(), MembershipOutcome::NoOp);
    }

    #[test]
    fn apply_dispatches_and_counts() {
        let mut s = ring6();
        let out = s
            .apply(&MembershipEvent::Join {
                capacity: 2.0,
                peers: vec![0, 3],
            })
            .unwrap();
        let MembershipOutcome::Joined(v) = out else {
            panic!("expected a join outcome");
        };
        s.apply(&MembershipEvent::Leave { agent: v }).unwrap();
        s.step();
        s.apply(&MembershipEvent::Rewire { agent: 0 }).unwrap();
        s.check_invariants().unwrap();
    }

    #[test]
    fn churned_swarm_still_converges_to_bd() {
        let mut s = ring6();
        for _ in 0..3 {
            s.step();
        }
        let v = s.join(5.0, &[0, 3]).unwrap();
        s.leave(1).unwrap();
        for _ in 0..3 {
            s.step();
        }
        s.leave(v).unwrap();
        let m = s.run(&SwarmConfig::default());
        assert!(m.converged);
        // Compare against the exact BD allocation of the surviving graph.
        let (g, slot_of) = s.to_graph().unwrap();
        let bd = prs_bd::decompose(&g).unwrap();
        let target: Vec<f64> = bd.utilities(&g).iter().map(|u| u.to_f64()).collect();
        for (i, &slot) in slot_of.iter().enumerate() {
            assert!(
                (m.utilities[slot] - target[i]).abs() < 1e-6,
                "slot {slot}: {} vs BD {}",
                m.utilities[slot],
                target[i]
            );
        }
    }
}
