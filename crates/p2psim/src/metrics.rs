//! Swarm-level metrics: fairness indices and attack-impact summaries.
//!
//! The incentive literature behind the paper ([10], [12]–[14]) evaluates
//! P2P sharing protocols by how fairly download tracks contribution and by
//! how much strategic agents can skew it. These helpers quantify both for
//! simulated swarms.

use crate::swarm::SwarmMetrics;

/// Jain's fairness index of the per-agent download/upload ratios:
/// `(Σ r_v)² / (n · Σ r_v²)` over agents with positive capacity.
/// 1 = perfectly proportional; `1/n` = maximally skewed.
pub fn jain_fairness(metrics: &SwarmMetrics, capacities: &[f64]) -> f64 {
    let ratios: Vec<f64> = metrics
        .utilities
        .iter()
        .zip(capacities)
        .filter(|(_, &w)| w > 0.0)
        .map(|(u, w)| u / w)
        .collect();
    let n = ratios.len() as f64;
    if n == 0.0 {
        return 1.0;
    }
    let sum: f64 = ratios.iter().sum();
    let sum_sq: f64 = ratios.iter().map(|r| r * r).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sum_sq)
}

/// Summary of what one attack did to a swarm, agent by agent.
#[derive(Clone, Debug)]
pub struct AttackImpact {
    /// The attacker's utility gain factor (attacked / honest).
    pub attacker_gain: f64,
    /// Total utility lost by agents who ended up worse off.
    pub collateral_damage: f64,
    /// Total utility gained by agents (other than the attacker) who ended
    /// up better off — an attack shifts allocation, it does not destroy it.
    pub bystander_gain: f64,
    /// Per-agent utility deltas (attacked − honest).
    pub deltas: Vec<f64>,
}

/// Compare an attacked run against the honest baseline.
///
/// Panics if the two runs have different swarm sizes.
pub fn attack_impact(
    honest: &SwarmMetrics,
    attacked: &SwarmMetrics,
    attacker: usize,
) -> AttackImpact {
    assert_eq!(
        honest.utilities.len(),
        attacked.utilities.len(),
        "swarm size mismatch"
    );
    let deltas: Vec<f64> = attacked
        .utilities
        .iter()
        .zip(&honest.utilities)
        .map(|(a, h)| a - h)
        .collect();
    let attacker_gain = if honest.utilities[attacker] > 0.0 {
        attacked.utilities[attacker] / honest.utilities[attacker]
    } else {
        1.0
    };
    let collateral_damage = deltas
        .iter()
        .enumerate()
        .filter(|&(v, &d)| v != attacker && d < 0.0)
        .map(|(_, d)| -d)
        .sum();
    let bystander_gain = deltas
        .iter()
        .enumerate()
        .filter(|&(v, &d)| v != attacker && d > 0.0)
        .map(|(_, d)| d)
        .sum();
    AttackImpact {
        attacker_gain,
        collateral_damage,
        bystander_gain,
        deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Strategy;
    use crate::swarm::{Swarm, SwarmConfig};
    use prs_graph::builders;
    use prs_numeric::int;

    fn run(g: &prs_graph::Graph, attacker: Option<(usize, f64, f64)>) -> SwarmMetrics {
        let mut swarm = match attacker {
            Some((v, w1, w2)) => Swarm::with_strategies(g, |a| {
                if a == v {
                    Strategy::Sybil { w1, w2 }
                } else {
                    Strategy::Honest
                }
            }),
            None => Swarm::new(g),
        };
        swarm.run(&SwarmConfig::default())
    }

    #[test]
    fn uniform_ring_is_perfectly_fair() {
        let g = builders::uniform_ring(6, int(3)).unwrap();
        let m = run(&g, None);
        let fairness = jain_fairness(&m, &g.weights_f64());
        assert!((fairness - 1.0).abs() < 1e-9, "fairness {fairness}");
    }

    #[test]
    fn skewed_ring_is_less_fair() {
        let g = builders::ring(vec![int(1), int(20), int(1), int(20)]).unwrap();
        let m = run(&g, None);
        let fairness = jain_fairness(&m, &g.weights_f64());
        assert!(fairness < 0.95, "expected skew, fairness {fairness}");
        assert!(fairness > 0.25, "Jain index bounded below by 1/n");
    }

    #[test]
    fn attack_impact_accounts_for_redistribution() {
        let g = builders::ring(vec![int(6), int(1), int(4), int(2), int(5)]).unwrap();
        let honest = run(&g, None);
        // The profitable split found in E13 for this ring: (3.5, 2.5).
        let attacked = run(&g, Some((0, 3.5, 2.5)));
        let impact = attack_impact(&honest, &attacked, 0);
        assert!(impact.attacker_gain > 1.19 && impact.attacker_gain < 1.21);
        // Conservation: total deltas sum to ~0 (resource is only shifted).
        let net: f64 = impact.deltas.iter().sum();
        assert!(net.abs() < 1e-4, "net {net}");
        assert!(impact.collateral_damage > 0.0);
        assert!(impact.bystander_gain > 0.0);
    }

    #[test]
    fn zero_capacity_agents_are_excluded_from_fairness() {
        let g = builders::ring(vec![int(0), int(2), int(2), int(2)]).unwrap();
        let m = run(&g, None);
        let fairness = jain_fairness(&m, &g.weights_f64());
        assert!(fairness.is_finite());
    }
}
