//! The swarm round loop and its metrics.

use crate::agent::{AgentId, AgentState, Strategy};
use prs_graph::Graph;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Maximum protocol rounds.
    pub max_rounds: usize,
    /// Convergence tolerance on the per-round utility movement
    /// (cycle-averaged, relative).
    pub tol: f64,
    /// Record the full per-round utility trace (costs memory on big runs).
    pub record_trace: bool,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            max_rounds: 100_000,
            tol: 1e-9,
            record_trace: false,
        }
    }
}

/// Aggregated simulation outcome.
#[derive(Clone, Debug)]
pub struct SwarmMetrics {
    /// Rounds actually executed.
    pub rounds: usize,
    /// Whether the utilities settled within tolerance.
    pub converged: bool,
    /// Final cycle-averaged utilities per agent.
    pub utilities: Vec<f64>,
    /// Optional per-round utility trace (row = round).
    pub trace: Vec<Vec<f64>>,
}

impl SwarmMetrics {
    /// Download/upload fairness: `U_v / w_v` per agent (∞-free: agents with
    /// zero capacity report `f64::NAN`).
    pub fn fairness(&self, capacities: &[f64]) -> Vec<f64> {
        self.utilities
            .iter()
            .zip(capacities)
            .map(|(u, w)| if *w > 0.0 { u / w } else { f64::NAN })
            .collect()
    }
}

/// A swarm of agents exchanging bandwidth over an undirected topology.
pub struct Swarm {
    agents: Vec<AgentState>,
    /// Previous-round utilities (for cycle-averaged convergence).
    prev_utilities: Vec<f64>,
    round: usize,
}

impl Swarm {
    /// Build a swarm from a weighted topology; every agent honest.
    pub fn new(g: &Graph) -> Self {
        Self::with_strategies(g, |_| Strategy::Honest)
    }

    /// Build a swarm assigning each agent a strategy.
    pub fn with_strategies(g: &Graph, strategy: impl Fn(AgentId) -> Strategy) -> Self {
        let w = g.weights_f64();
        let agents: Vec<AgentState> = (0..g.n())
            .map(|v| AgentState::new(w[v], g.neighbors(v).to_vec(), strategy(v)))
            .collect();
        let n = agents.len();
        let mut swarm = Swarm {
            agents,
            prev_utilities: vec![0.0; n],
            round: 0,
        };
        swarm.deliver();
        swarm
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.agents.len()
    }

    /// Read-only agent access.
    pub fn agent(&self, v: AgentId) -> &AgentState {
        &self.agents[v]
    }

    /// Current utilities `U_v(t)`.
    pub fn utilities(&self) -> Vec<f64> {
        self.agents.iter().map(|a| a.utility()).collect()
    }

    /// Deliver every agent's `outgoing` into its peers' `received`.
    fn deliver(&mut self) {
        for v in 0..self.agents.len() {
            self.prev_utilities[v] = self.agents[v].utility();
        }
        // Two-phase: read all sends, then write receipts (avoids aliasing).
        let sends: Vec<(AgentId, AgentId, f64)> = self
            .agents
            .iter()
            .enumerate()
            .flat_map(|(v, a)| {
                a.peers
                    .iter()
                    .zip(&a.outgoing)
                    .map(move |(&u, &amt)| (v, u, amt))
                    .collect::<Vec<_>>()
            })
            .collect();
        for a in &mut self.agents {
            a.received.iter_mut().for_each(|r| *r = 0.0);
        }
        for (v, u, amt) in sends {
            let slot = self.agents[u].slot_of(v);
            self.agents[u].received[slot] += amt;
        }
    }

    /// One protocol round: respond, then deliver.
    pub fn step(&mut self) {
        for a in &mut self.agents {
            a.respond();
        }
        self.deliver();
        self.round += 1;
    }

    /// Run until the cycle-averaged utilities stop moving (or `max_rounds`).
    pub fn run(&mut self, cfg: &SwarmConfig) -> SwarmMetrics {
        // One span per simulation with doubling-round checkpoint instants
        // (per-round spans would swamp the recorder on long runs).
        let mut sp = prs_trace::span("p2psim", "swarm_run");
        sp.attr("agents", || self.agents.len().to_string());
        let mut checkpoint = 16usize;
        let mut trace = Vec::new();
        let mut converged = false;
        let mut rounds = 0;
        if cfg.record_trace {
            trace.push(self.utilities());
        }
        for _ in 0..cfg.max_rounds {
            let before_avg = self.averaged_utilities();
            self.step();
            rounds += 1;
            if cfg.record_trace {
                trace.push(self.utilities());
            }
            let after_avg = self.averaged_utilities();
            let delta = before_avg
                .iter()
                .zip(&after_avg)
                .map(|(a, b)| (a - b).abs() / (1.0 + b.abs()))
                .fold(0.0, f64::max);
            if rounds == checkpoint {
                checkpoint = checkpoint.saturating_mul(2);
                if prs_trace::is_enabled() {
                    prs_trace::instant("p2psim", "round_checkpoint", || {
                        vec![
                            ("round", rounds.to_string()),
                            ("delta", format!("{delta:e}")),
                        ]
                    });
                }
            }
            if delta <= cfg.tol {
                converged = true;
                break;
            }
        }
        sp.attr("rounds", || rounds.to_string());
        sp.attr("converged", || converged.to_string());
        SwarmMetrics {
            rounds,
            converged,
            utilities: self.averaged_utilities(),
            trace,
        }
    }

    /// Utilities averaged over the last two rounds (stable under the
    /// period-2 oscillation bipartite topologies can exhibit).
    pub fn averaged_utilities(&self) -> Vec<f64> {
        self.agents
            .iter()
            .zip(&self.prev_utilities)
            .map(|(a, p)| 0.5 * (a.utility() + p))
            .collect()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_bd::decompose;
    use prs_graph::{builders, random};
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn honest_swarm_converges_to_bd_utilities() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [4usize, 6, 9] {
            let g = random::random_ring(&mut rng, n, 1, 10);
            let bd = decompose(&g).unwrap();
            let target: Vec<f64> = bd.utilities(&g).iter().map(|u| u.to_f64()).collect();
            let mut swarm = Swarm::new(&g);
            let m = swarm.run(&SwarmConfig::default());
            assert!(m.converged, "n={n}");
            for (got, want) in m.utilities.iter().zip(&target) {
                assert!(
                    (got - want).abs() < 1e-6,
                    "swarm {got} vs BD {want} on {:?}",
                    g.weights()
                );
            }
        }
    }

    #[test]
    fn swarm_agrees_with_dynamics_engine() {
        // Message-level simulation vs allocation-vector engine: identical
        // trajectories on the same graph.
        let g = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
        let mut swarm = Swarm::new(&g);
        let mut engine = prs_dynamics::F64Engine::new(&g);
        for _ in 0..50 {
            let su = swarm.utilities();
            let eu = engine.utilities();
            for (s, e) in su.iter().zip(eu) {
                assert!((s - e).abs() < 1e-12, "trajectory diverged: {s} vs {e}");
            }
            swarm.step();
            engine.step();
        }
    }

    #[test]
    fn capacity_is_conserved_each_round() {
        let g = builders::ring(vec![int(2), int(7), int(1), int(4)]).unwrap();
        let total: f64 = g.weights_f64().iter().sum();
        let mut swarm = Swarm::new(&g);
        for _ in 0..20 {
            swarm.step();
            let received: f64 = swarm.utilities().iter().sum();
            assert!((received - total).abs() < 1e-9);
        }
    }

    #[test]
    fn sybil_swarm_matches_split_path_equilibrium() {
        // A Sybil attacker on the ring must converge to the utilities of the
        // split path P_v(w1, w2) — protocol-level Definition 7.
        let g = builders::ring(vec![int(4), int(2), int(6), int(3)]).unwrap();
        let v = 0usize;
        let (w1, w2) = (2.5f64, 1.5f64);
        // Peer slots: neighbors(0) = [1, 3]; identity 1 faces peer 1.
        let mut swarm = Swarm::with_strategies(&g, |a| {
            if a == v {
                Strategy::Sybil { w1, w2 }
            } else {
                Strategy::Honest
            }
        });
        let m = swarm.run(&SwarmConfig::default());
        assert!(m.converged);

        // Closed form: decompose the split path (w1 next to successor = 1).
        let (p, p1, p2) = builders::sybil_split_path(
            &g,
            v,
            prs_numeric::Rational::from_f64(w1),
            prs_numeric::Rational::from_f64(w2),
        )
        .unwrap();
        let pbd = decompose(&p).unwrap();
        let want_attacker = (pbd.utility(&p, p1).to_f64()) + (pbd.utility(&p, p2).to_f64());
        let got_attacker = m.utilities[v];
        assert!(
            (got_attacker - want_attacker).abs() < 1e-6,
            "attacker utility {got_attacker} vs split-path equilibrium {want_attacker}"
        );
        // Other agents match the path equilibrium too (path ids: ring walk
        // from successor).
        let succ_path_utility = pbd.utility(&p, 1).to_f64();
        assert!((m.utilities[1] - succ_path_utility).abs() < 1e-6);
    }

    #[test]
    fn misreporting_never_pays_at_protocol_level() {
        // Protocol-level Theorem 10: an agent that under-reports capacity
        // converges to the equilibrium of the graph with the reported
        // weight — never better than honest.
        let g = builders::ring(vec![int(6), int(2), int(4), int(3)]).unwrap();
        let v = 0usize;
        let honest_u = {
            let mut s = Swarm::new(&g);
            s.run(&SwarmConfig::default()).utilities[v]
        };
        for reported in [0.5f64, 2.0, 4.5, 6.0] {
            let mut s = Swarm::with_strategies(&g, |a| {
                if a == v {
                    Strategy::Misreport { reported }
                } else {
                    Strategy::Honest
                }
            });
            let m = s.run(&SwarmConfig::default());
            assert!(
                m.utilities[v] <= honest_u + 1e-7,
                "misreport {reported} beat honesty: {} > {honest_u}",
                m.utilities[v]
            );
            // Cross-check against the closed form on the modified graph.
            let g_x = g.with_weight(v, prs_numeric::Rational::from_f64(reported));
            let bd = decompose(&g_x).unwrap();
            let want = bd.utility(&g_x, v).to_f64();
            assert!(
                (m.utilities[v] - want).abs() < 1e-6,
                "protocol {} vs closed form {want}",
                m.utilities[v]
            );
        }
    }

    #[test]
    fn trace_recording() {
        let g = builders::uniform_ring(4, int(2)).unwrap();
        let mut swarm = Swarm::new(&g);
        let m = swarm.run(&SwarmConfig {
            max_rounds: 10,
            tol: 0.0, // force all rounds
            record_trace: true,
        });
        assert_eq!(m.trace.len(), m.rounds + 1);
        assert!(m.trace.iter().all(|row| row.len() == 4));
    }
}
