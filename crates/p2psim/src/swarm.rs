//! The swarm round loop and its metrics.
//!
//! [`Swarm`] is a thin facade over the struct-of-arrays engine in
//! [`crate::soa`]: it keeps the original agent-oriented API (strategies,
//! per-agent state snapshots, the `run` loop) while all round work happens
//! in the flat-lane core. Code that needs scale, dynamic membership, or
//! the deterministic parallel runner should use [`SoaSwarm`] directly.

use crate::agent::{AgentId, AgentState, Strategy};
use crate::soa::SoaSwarm;
use prs_graph::Graph;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Maximum protocol rounds.
    pub max_rounds: usize,
    /// Convergence tolerance on the per-round utility movement
    /// (cycle-averaged, relative).
    pub tol: f64,
    /// Record the full per-round utility trace (costs memory on big runs).
    pub record_trace: bool,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            max_rounds: 100_000,
            tol: 1e-9,
            record_trace: false,
        }
    }
}

/// Aggregated simulation outcome.
#[derive(Clone, Debug)]
pub struct SwarmMetrics {
    /// Rounds actually executed.
    pub rounds: usize,
    /// Whether the utilities settled within tolerance.
    pub converged: bool,
    /// Final cycle-averaged utilities per agent.
    pub utilities: Vec<f64>,
    /// Optional per-round utility trace (row = round).
    pub trace: Vec<Vec<f64>>,
}

impl SwarmMetrics {
    /// Download/upload fairness: `U_v / w_v` per agent (∞-free: agents with
    /// zero capacity report `f64::NAN`).
    pub fn fairness(&self, capacities: &[f64]) -> Vec<f64> {
        self.utilities
            .iter()
            .zip(capacities)
            .map(|(u, w)| if *w > 0.0 { u / w } else { f64::NAN })
            .collect()
    }
}

/// A swarm of agents exchanging bandwidth over an undirected topology.
///
/// Facade over [`SoaSwarm`]; trajectories are bit-identical to the
/// original per-agent engine (pinned by `tests/swarm_soa_equivalence.rs`).
pub struct Swarm {
    core: SoaSwarm,
    strategies: Vec<Strategy>,
}

impl Swarm {
    /// Build a swarm from a weighted topology; every agent honest.
    pub fn new(g: &Graph) -> Self {
        Self::with_strategies(g, |_| Strategy::Honest)
    }

    /// Build a swarm assigning each agent a strategy.
    pub fn with_strategies(g: &Graph, strategy: impl Fn(AgentId) -> Strategy) -> Self {
        let strategies: Vec<Strategy> = (0..g.n()).map(strategy).collect();
        let core = SoaSwarm::with_strategies(g, |v| strategies[v].clone());
        Swarm { core, strategies }
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.core.n_slots()
    }

    /// Snapshot of one agent's protocol state (capacity, peers, lanes,
    /// strategy), materialized from the flat engine lanes.
    pub fn agent(&self, v: AgentId) -> AgentState {
        AgentState {
            capacity: self.core.capacity(v),
            peers: self.core.peers(v).to_vec(),
            received: self.core.received_of(v).to_vec(),
            outgoing: self.core.outgoing_of(v).to_vec(),
            strategy: self.strategies[v].clone(),
        }
    }

    /// Current utilities `U_v(t)`.
    pub fn utilities(&self) -> Vec<f64> {
        self.core.utilities()
    }

    /// One protocol round: respond, then deliver.
    pub fn step(&mut self) {
        self.core.step();
    }

    /// Run until the cycle-averaged utilities stop moving (or `max_rounds`).
    pub fn run(&mut self, cfg: &SwarmConfig) -> SwarmMetrics {
        self.core.run(cfg)
    }

    /// Utilities averaged over the last two rounds (stable under the
    /// period-2 oscillation bipartite topologies can exhibit).
    pub fn averaged_utilities(&self) -> Vec<f64> {
        self.core.averaged_utilities()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.core.round()
    }

    /// The underlying struct-of-arrays engine.
    pub fn soa(&self) -> &SoaSwarm {
        &self.core
    }

    /// Mutable access to the underlying engine (membership events,
    /// partitioned runs).
    pub fn soa_mut(&mut self) -> &mut SoaSwarm {
        &mut self.core
    }

    /// Unwrap into the underlying engine.
    pub fn into_soa(self) -> SoaSwarm {
        self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_bd::decompose;
    use prs_graph::{builders, random};
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn honest_swarm_converges_to_bd_utilities() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [4usize, 6, 9] {
            let g = random::random_ring(&mut rng, n, 1, 10);
            let bd = decompose(&g).unwrap();
            let target: Vec<f64> = bd.utilities(&g).iter().map(|u| u.to_f64()).collect();
            let mut swarm = Swarm::new(&g);
            let m = swarm.run(&SwarmConfig::default());
            assert!(m.converged, "n={n}");
            for (got, want) in m.utilities.iter().zip(&target) {
                assert!(
                    (got - want).abs() < 1e-6,
                    "swarm {got} vs BD {want} on {:?}",
                    g.weights()
                );
            }
        }
    }

    #[test]
    fn swarm_agrees_with_dynamics_engine() {
        // Message-level simulation vs allocation-vector engine: identical
        // trajectories on the same graph.
        let g = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
        let mut swarm = Swarm::new(&g);
        let mut engine = prs_dynamics::F64Engine::new(&g);
        for _ in 0..50 {
            let su = swarm.utilities();
            let eu = engine.utilities();
            for (s, e) in su.iter().zip(eu) {
                assert!((s - e).abs() < 1e-12, "trajectory diverged: {s} vs {e}");
            }
            swarm.step();
            engine.step();
        }
    }

    #[test]
    fn capacity_is_conserved_each_round() {
        let g = builders::ring(vec![int(2), int(7), int(1), int(4)]).unwrap();
        let total: f64 = g.weights_f64().iter().sum();
        let mut swarm = Swarm::new(&g);
        for _ in 0..20 {
            swarm.step();
            let received: f64 = swarm.utilities().iter().sum();
            assert!((received - total).abs() < 1e-9);
        }
    }

    #[test]
    fn sybil_swarm_matches_split_path_equilibrium() {
        // A Sybil attacker on the ring must converge to the utilities of the
        // split path P_v(w1, w2) — protocol-level Definition 7.
        let g = builders::ring(vec![int(4), int(2), int(6), int(3)]).unwrap();
        let v = 0usize;
        let (w1, w2) = (2.5f64, 1.5f64);
        // Peer slots: neighbors(0) = [1, 3]; identity 1 faces peer 1.
        let mut swarm = Swarm::with_strategies(&g, |a| {
            if a == v {
                Strategy::Sybil { w1, w2 }
            } else {
                Strategy::Honest
            }
        });
        let m = swarm.run(&SwarmConfig::default());
        assert!(m.converged);

        // Closed form: decompose the split path (w1 next to successor = 1).
        let (p, p1, p2) = builders::sybil_split_path(
            &g,
            v,
            prs_numeric::Rational::from_f64(w1),
            prs_numeric::Rational::from_f64(w2),
        )
        .unwrap();
        let pbd = decompose(&p).unwrap();
        let want_attacker = (pbd.utility(&p, p1).to_f64()) + (pbd.utility(&p, p2).to_f64());
        let got_attacker = m.utilities[v];
        assert!(
            (got_attacker - want_attacker).abs() < 1e-6,
            "attacker utility {got_attacker} vs split-path equilibrium {want_attacker}"
        );
        // Other agents match the path equilibrium too (path ids: ring walk
        // from successor).
        let succ_path_utility = pbd.utility(&p, 1).to_f64();
        assert!((m.utilities[1] - succ_path_utility).abs() < 1e-6);
    }

    #[test]
    fn misreporting_never_pays_at_protocol_level() {
        // Protocol-level Theorem 10: an agent that under-reports capacity
        // converges to the equilibrium of the graph with the reported
        // weight — never better than honest.
        let g = builders::ring(vec![int(6), int(2), int(4), int(3)]).unwrap();
        let v = 0usize;
        let honest_u = {
            let mut s = Swarm::new(&g);
            s.run(&SwarmConfig::default()).utilities[v]
        };
        for reported in [0.5f64, 2.0, 4.5, 6.0] {
            let mut s = Swarm::with_strategies(&g, |a| {
                if a == v {
                    Strategy::Misreport { reported }
                } else {
                    Strategy::Honest
                }
            });
            let m = s.run(&SwarmConfig::default());
            assert!(
                m.utilities[v] <= honest_u + 1e-7,
                "misreport {reported} beat honesty: {} > {honest_u}",
                m.utilities[v]
            );
            // Cross-check against the closed form on the modified graph.
            let g_x = g.with_weight(v, prs_numeric::Rational::from_f64(reported));
            let bd = decompose(&g_x).unwrap();
            let want = bd.utility(&g_x, v).to_f64();
            assert!(
                (m.utilities[v] - want).abs() < 1e-6,
                "protocol {} vs closed form {want}",
                m.utilities[v]
            );
        }
    }

    #[test]
    fn trace_recording() {
        let g = builders::uniform_ring(4, int(2)).unwrap();
        let mut swarm = Swarm::new(&g);
        let m = swarm.run(&SwarmConfig {
            max_rounds: 10,
            tol: 0.0, // force all rounds
            record_trace: true,
        });
        assert_eq!(m.trace.len(), m.rounds + 1);
        assert!(m.trace.iter().all(|row| row.len() == 4));
    }

    #[test]
    fn agent_snapshot_matches_engine_lanes() {
        let g = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
        let mut swarm = Swarm::new(&g);
        swarm.step();
        let a = swarm.agent(2);
        assert_eq!(a.peers, vec![1, 3]);
        assert_eq!(a.capacity, 4.0);
        assert_eq!(a.utility(), swarm.utilities()[2]);
        assert_eq!(a.strategy, Strategy::Honest);
    }
}
