//! Property tests for the swarm simulator.

use proptest::prelude::*;
use prs_graph::builders;
use prs_numeric::{int, Rational};
use prs_p2psim::{Strategy as AgentStrategy, Swarm, SwarmConfig};

fn arb_ring_weights() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(1i64..12, 3..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn capacity_conserved_every_round(weights in arb_ring_weights()) {
        let g = builders::ring(weights.iter().map(|&w| int(w)).collect()).unwrap();
        let total: f64 = g.weights_f64().iter().sum();
        let mut swarm = Swarm::new(&g);
        for _ in 0..30 {
            swarm.step();
            let received: f64 = swarm.utilities().iter().sum();
            prop_assert!((received - total).abs() < 1e-9);
        }
    }

    #[test]
    fn utilities_stay_nonnegative_and_finite(weights in arb_ring_weights()) {
        let g = builders::ring(weights.iter().map(|&w| int(w)).collect()).unwrap();
        let mut swarm = Swarm::new(&g);
        let m = swarm.run(&SwarmConfig {
            max_rounds: 50_000,
            tol: 1e-10,
            record_trace: false,
        });
        for u in &m.utilities {
            prop_assert!(u.is_finite());
            prop_assert!(*u >= -1e-12);
        }
    }

    #[test]
    fn swarm_matches_closed_form(weights in arb_ring_weights()) {
        let g = builders::ring(weights.iter().map(|&w| int(w)).collect()).unwrap();
        let bd = prs_bd::decompose(&g).unwrap();
        let want: Vec<f64> = bd.utilities(&g).iter().map(|u| u.to_f64()).collect();
        let mut swarm = Swarm::new(&g);
        let m = swarm.run(&SwarmConfig {
            max_rounds: 500_000,
            tol: 1e-13,
            record_trace: false,
        });
        for (got, want) in m.utilities.iter().zip(&want) {
            prop_assert!(
                (got - want).abs() / (1.0 + want.abs()) < 1e-3,
                "swarm {got} vs closed form {want} on {weights:?}"
            );
        }
    }

    #[test]
    fn sybil_attacker_never_exceeds_twice_honest(
        weights in arb_ring_weights(),
        split_pct in 1usize..100,
    ) {
        let g = builders::ring(weights.iter().map(|&w| int(w)).collect()).unwrap();
        let v = 0usize;
        let honest = {
            let mut s = Swarm::new(&g);
            s.run(&SwarmConfig::default()).utilities[v]
        };
        let w_v = g.weight(v).to_f64();
        let w1 = w_v * split_pct as f64 / 100.0;
        let w2 = w_v - w1;
        let mut s = Swarm::with_strategies(&g, |a| {
            if a == v {
                AgentStrategy::Sybil { w1, w2 }
            } else {
                AgentStrategy::Honest
            }
        });
        let attacked = s.run(&SwarmConfig::default()).utilities[v];
        // Protocol-level Theorem 8, per-sample.
        prop_assert!(
            attacked <= 2.0 * honest + 1e-6,
            "protocol Sybil gain {} > 2 × {honest} on {weights:?} (split {split_pct}%)",
            attacked
        );
    }

    #[test]
    fn misreporting_underperforms_honesty(
        weights in arb_ring_weights(),
        report_pct in 1usize..=100,
    ) {
        let g = builders::ring(weights.iter().map(|&w| int(w)).collect()).unwrap();
        let v = 1usize;
        let honest = {
            let mut s = Swarm::new(&g);
            s.run(&SwarmConfig::default()).utilities[v]
        };
        let reported = g.weight(v).to_f64() * report_pct as f64 / 100.0;
        let mut s = Swarm::with_strategies(&g, |a| {
            if a == v {
                AgentStrategy::Misreport { reported }
            } else {
                AgentStrategy::Honest
            }
        });
        let lied = s.run(&SwarmConfig::default()).utilities[v];
        prop_assert!(
            lied <= honest + 1e-6,
            "misreport {report_pct}% beat honesty ({lied} > {honest}) on {weights:?}"
        );
    }
}

#[test]
fn fairness_index_within_bounds() {
    let g = builders::ring(vec![
        Rational::from_integer(1),
        Rational::from_integer(5),
        Rational::from_integer(2),
        Rational::from_integer(9),
    ])
    .unwrap();
    let mut swarm = Swarm::new(&g);
    let m = swarm.run(&SwarmConfig::default());
    let f = prs_p2psim::jain_fairness(&m, &g.weights_f64());
    assert!(
        (0.25..=1.0 + 1e-9).contains(&f),
        "Jain index {f} out of bounds"
    );
}
