//! Property tests for dynamic membership: free-list recycling never
//! aliases live state, and arbitrary event sequences preserve the
//! engine's structural invariants.

use proptest::prelude::*;
use prs_graph::builders;
use prs_numeric::int;
use prs_p2psim::{MembershipEvent, SoaSwarm, SwarmConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_ring_weights() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(1i64..12, 4..10)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// A live slot drawn pseudo-randomly from the swarm.
fn pick_live(s: &SoaSwarm, rng: &mut StdRng) -> usize {
    let live: Vec<usize> = (0..s.n_slots()).filter(|&v| s.is_alive(v)).collect();
    live[rng.gen_range(0..live.len())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Leave-then-join reuses the freed slot (LIFO) and the recycled slot
    /// starts cold: bystanders' lanes are bitwise untouched, and nothing
    /// of the previous occupant's state leaks into the newcomer.
    #[test]
    fn leave_then_join_recycles_without_aliasing(
        weights in arb_ring_weights(),
        victim_pick in 0usize..64,
        warmup in 1usize..6,
    ) {
        let n = weights.len();
        let g = builders::ring(weights.iter().map(|&w| int(w)).collect()).unwrap();
        let mut s = SoaSwarm::new(&g);
        for _ in 0..warmup {
            s.step();
        }
        let victim = victim_pick % n;
        s.leave(victim).unwrap();
        s.check_invariants().unwrap();

        // Snapshot every surviving agent's lanes after the leave.
        let survivors: Vec<usize> = (0..n).filter(|&v| v != victim).collect();
        let before: Vec<(Vec<u64>, Vec<u64>)> = survivors
            .iter()
            .map(|&v| (bits(s.outgoing_of(v)), bits(s.received_of(v))))
            .collect();

        // Rejoin wired to the two ex-neighbors of the victim.
        let peers: Vec<usize> = [(victim + n - 1) % n, (victim + 1) % n].to_vec();
        let slot = s.join(3.0, &peers).unwrap();
        prop_assert_eq!(slot, victim, "LIFO free list reuses the freed slot");
        prop_assert_eq!(s.n_slots(), n, "no slot growth while the free list has room");

        // The recycled slot is cold: even-split upload, zero receipts,
        // zero utility — nothing survives from the previous occupant.
        prop_assert_eq!(s.outgoing_of(slot), &[1.5, 1.5][..]);
        prop_assert_eq!(s.received_of(slot), &[0.0, 0.0][..]);
        prop_assert_eq!(s.utilities()[slot].to_bits(), 0.0f64.to_bits());

        // Bystanders (everyone but the two re-wired peers) are bitwise
        // untouched; the peers only gained one cold 0.0 cell each.
        for (i, &v) in survivors.iter().enumerate() {
            let (out_before, rcv_before) = &before[i];
            let out_now = bits(s.outgoing_of(v));
            let rcv_now = bits(s.received_of(v));
            if peers.contains(&v) {
                prop_assert_eq!(out_now.len(), out_before.len() + 1);
                prop_assert_eq!(rcv_now.len(), rcv_before.len() + 1);
                let p = s.peers(v).iter().position(|&u| u == slot).unwrap();
                prop_assert_eq!(out_now[p], 0.0f64.to_bits(), "peer-side arc starts cold");
                prop_assert_eq!(rcv_now[p], 0.0f64.to_bits());
                let mut out_rest = out_now.clone();
                out_rest.remove(p);
                let mut rcv_rest = rcv_now.clone();
                rcv_rest.remove(p);
                prop_assert_eq!(&out_rest, out_before, "peer lanes shifted, not changed");
                prop_assert_eq!(&rcv_rest, rcv_before);
            } else {
                prop_assert_eq!(&out_now, out_before, "bystander {} aliased", v);
                prop_assert_eq!(&rcv_now, rcv_before);
            }
        }
        s.check_invariants().unwrap();

        // The churned swarm is still a healthy protocol instance.
        let m = s.run(&SwarmConfig::default());
        prop_assert!(m.converged);
    }

    /// Arbitrary interleavings of join/leave/rewire (failures tolerated)
    /// keep every structural invariant intact, and freed slots are always
    /// exhausted before the arena grows.
    #[test]
    fn random_event_sequences_preserve_invariants(
        weights in arb_ring_weights(),
        seed in 0u64..1u64 << 48,
        events in 4usize..24,
    ) {
        let g = builders::ring(weights.iter().map(|&w| int(w)).collect()).unwrap();
        let mut s = SoaSwarm::new(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..events {
            let ev = match rng.gen_range(0u8..4) {
                0 => {
                    let a = pick_live(&s, &mut rng);
                    let b = pick_live(&s, &mut rng);
                    MembershipEvent::Join {
                        capacity: f64::from(rng.gen_range(1u32..9)),
                        peers: if a == b { vec![a] } else { vec![a, b] },
                    }
                }
                1 => MembershipEvent::Leave { agent: pick_live(&s, &mut rng) },
                _ => MembershipEvent::Rewire { agent: pick_live(&s, &mut rng) },
            };
            if s.live_agents() <= 2 && matches!(ev, MembershipEvent::Leave { .. }) {
                continue;
            }
            let free_before = s.n_slots() - s.live_agents();
            let grew = {
                let slots_before = s.n_slots();
                let _ = s.apply(&ev); // rejections are fine; state must hold
                s.n_slots() > slots_before
            };
            if grew {
                prop_assert_eq!(free_before, 0, "arena grew while free slots existed");
            }
            s.check_invariants().unwrap();
            s.step(); // interleave protocol rounds with churn
            s.check_invariants().unwrap();
        }
        // Utilities stay finite and non-negative through arbitrary churn.
        for u in s.utilities() {
            prop_assert!(u.is_finite() && u >= 0.0);
        }
    }
}
