//! A weighted ring with the paper's full analysis surface.

use crate::error::Error;
use prs_bd::{allocate, decompose, AgentClass, Allocation, BottleneckDecomposition};
use prs_deviation::{classify_prop11, MisreportFamily, Prop11Case};
use prs_dynamics::{ConvergenceReport, F64Engine};
use prs_graph::{builders, Graph, VertexId};
use prs_numeric::Rational;
use prs_sybil::{
    attack::AttackConfig, best_sybil_split, cases::InitialPathReport, classify_initial_path,
    honest_split, SybilOutcome,
};

/// One ring-shaped resource sharing instance, with cached decomposition.
///
/// All analyses are exact unless stated otherwise; see the component crates
/// for the knobs.
#[derive(Clone)]
pub struct RingInstance {
    graph: Graph,
    bd: BottleneckDecomposition,
}

impl std::fmt::Debug for RingInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingInstance")
            .field("weights", &self.graph.weights())
            .field("pairs", &self.bd.k())
            .finish()
    }
}

impl RingInstance {
    /// Build from explicit rational weights (`n ≥ 3`). Weights must be
    /// strictly positive for the decomposition to exist on a ring; a zero
    /// or negative weight is rejected here rather than panicking deep in
    /// the attack sweep.
    pub fn new(weights: Vec<Rational>) -> Result<Self, Error> {
        if let Some(vertex) = weights.iter().position(|w| !w.is_positive()) {
            return Err(prs_graph::GraphError::NonPositiveWeight { vertex }.into());
        }
        let graph = builders::ring(weights)?;
        let bd = decompose(&graph)?;
        Ok(RingInstance { graph, bd })
    }

    /// Build from integer weights.
    pub fn from_integers(weights: &[i64]) -> Result<Self, Error> {
        Self::new(weights.iter().map(|&w| Rational::from_integer(w)).collect())
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The bottleneck decomposition (Definition 2).
    pub fn decomposition(&self) -> &BottleneckDecomposition {
        &self.bd
    }

    /// The class of agent `v` (Definition 4).
    pub fn class_of(&self, v: VertexId) -> AgentClass {
        self.bd.class_of(v)
    }

    /// The BD allocation (Definition 5).
    pub fn allocation(&self) -> Allocation {
        allocate(&self.graph, &self.bd)
    }

    /// Equilibrium utilities (Proposition 6).
    pub fn equilibrium_utilities(&self) -> Vec<Rational> {
        self.bd.utilities(&self.graph)
    }

    /// Equilibrium utility of one agent.
    pub fn equilibrium_utility(&self, v: VertexId) -> Rational {
        self.bd.utility(&self.graph, v)
    }

    /// Run the proportional response protocol from the Definition 1 initial
    /// condition until it is `eps`-close to the Proposition 6 utilities.
    pub fn run_dynamics(&self, eps: f64, max_rounds: usize) -> ConvergenceReport {
        let target: Vec<f64> = self
            .equilibrium_utilities()
            .iter()
            .map(|u| u.to_f64())
            .collect();
        let mut engine = F64Engine::new(&self.graph);
        engine.run_until_close(&target, eps, max_rounds)
    }

    /// The honest Sybil split `(w₁⁰, w₂⁰)` of agent `v` (Lemma 9 baseline).
    pub fn honest_split(&self, v: VertexId) -> (Rational, Rational) {
        honest_split(&self.graph, v)
    }

    /// Optimize a Sybil attack for agent `v` (Definition 7) and report its
    /// incentive ratio `ζ_v` (a certified lower bound; ≤ 2 by Theorem 8).
    pub fn sybil_attack(&self, v: VertexId, cfg: &AttackConfig) -> SybilOutcome {
        best_sybil_split(&self.graph, v, cfg)
    }

    /// Lemma 14 / Lemma 20 classification of agent `v`'s initial split path.
    pub fn initial_path_case(&self, v: VertexId) -> InitialPathReport {
        classify_initial_path(&self.graph, v)
    }

    /// Proposition 11 classification of agent `v`'s misreport α-curve.
    pub fn misreport_case(&self, v: VertexId, refine_bits: u32) -> Prop11Case {
        let fam = MisreportFamily::new(self.graph.clone(), v);
        classify_prop11(&fam, refine_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_numeric::{int, ratio};

    #[test]
    fn construction_and_basics() {
        let r = RingInstance::from_integers(&[5, 1, 4, 2]).unwrap();
        assert_eq!(r.n(), 4);
        assert!(r.graph().is_ring());
        let total: Rational = r.equilibrium_utilities().iter().sum();
        assert_eq!(total, r.graph().total_weight());
    }

    #[test]
    fn too_small_ring_rejected() {
        assert!(RingInstance::from_integers(&[1, 2]).is_err());
    }

    #[test]
    fn allocation_utilities_match_prop6() {
        let r = RingInstance::from_integers(&[3, 1, 4, 1, 5]).unwrap();
        let alloc = r.allocation();
        for v in 0..r.n() {
            assert_eq!(alloc.utility(v), r.equilibrium_utility(v));
        }
    }

    #[test]
    fn dynamics_reach_equilibrium() {
        let r = RingInstance::from_integers(&[2, 7, 1, 8]).unwrap();
        let rep = r.run_dynamics(1e-8, 100_000);
        assert!(rep.converged, "{rep:?}");
    }

    #[test]
    fn sybil_ratio_within_theorem8() {
        let r = RingInstance::from_integers(&[4, 1, 2, 8, 1]).unwrap();
        for v in 0..r.n() {
            let out = r.sybil_attack(
                v,
                &AttackConfig::new()
                    .with_grid(16)
                    .with_zoom_levels(3)
                    .with_keep(2),
            );
            assert!(out.ratio >= Rational::one());
            assert!(out.ratio <= int(2));
        }
    }

    #[test]
    fn rational_weights_work_end_to_end() {
        let r =
            RingInstance::new(vec![ratio(1, 2), ratio(3, 4), ratio(5, 6), ratio(7, 8)]).unwrap();
        let (w1, w2) = r.honest_split(2);
        assert_eq!(&w1 + &w2, ratio(5, 6));
    }
}
