//! Instance file parser.
//!
//! Plain-text format, one directive per line, `#` comments:
//!
//! ```text
//! # a 5-agent ring
//! ring
//! weights: 3 1 4 1/2 5
//! ```
//!
//! ```text
//! # an arbitrary graph
//! graph
//! weights: 1 2 3 4
//! edges: 0-1 1-2 2-3 3-0 0-2
//! ```
//!
//! Weights accept the same literals as [`Rational::from_str`]: integers,
//! `p/q` fractions, and exact decimals. Failures come back as
//! [`Error::Parse`] carrying the offending line number.

use crate::error::Error;
use prs_graph::{builders, Graph};
use prs_numeric::Rational;

fn err(line: usize, message: impl Into<String>) -> Error {
    Error::Parse {
        line,
        message: message.into(),
    }
}

/// Parse an instance file into a [`Graph`].
pub fn parse_instance(text: &str) -> Result<Graph, Error> {
    let mut kind: Option<&str> = None;
    let mut weights: Option<Vec<Rational>> = None;
    let mut edges: Option<Vec<(usize, usize)>> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("weights:") {
            let parsed: Result<Vec<Rational>, _> = rest
                .split_whitespace()
                .map(|tok| {
                    tok.parse::<Rational>()
                        .map_err(|_| err(lineno, format!("invalid weight `{tok}`")))
                })
                .collect();
            weights = Some(parsed?);
        } else if let Some(rest) = line.strip_prefix("edges:") {
            let mut list = Vec::new();
            for tok in rest.split_whitespace() {
                let (a, b) = tok
                    .split_once('-')
                    .ok_or_else(|| err(lineno, format!("invalid edge `{tok}` (want `u-v`)")))?;
                let a: usize = a
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid endpoint `{a}`")))?;
                let b: usize = b
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid endpoint `{b}`")))?;
                list.push((a, b));
            }
            edges = Some(list);
        } else if kind.is_none() && (line == "ring" || line == "path" || line == "graph") {
            kind = Some(match line {
                "ring" => "ring",
                "path" => "path",
                _ => "graph",
            });
        } else {
            return Err(err(lineno, format!("unrecognized directive `{line}`")));
        }
    }

    let kind = kind.ok_or_else(|| err(0, "missing topology line (`ring`, `path` or `graph`)"))?;
    let weights = weights.ok_or_else(|| err(0, "missing `weights:` line"))?;
    match kind {
        "ring" => builders::ring(weights).map_err(|e| err(0, e.to_string())),
        "path" => builders::path(weights).map_err(|e| err(0, e.to_string())),
        _ => {
            let edges = edges.ok_or_else(|| err(0, "`graph` instances need an `edges:` line"))?;
            Graph::new(weights, &edges).map_err(|e| err(0, e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_numeric::{int, ratio};

    fn parse_err(text: &str) -> (usize, String) {
        match parse_instance(text).unwrap_err() {
            Error::Parse { line, message } => (line, message),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parses_ring() {
        let g = parse_instance("# demo\nring\nweights: 3 1 4 1/2 5\n").unwrap();
        assert!(g.is_ring());
        assert_eq!(g.weight(3), &ratio(1, 2));
    }

    #[test]
    fn parses_path_and_decimals() {
        let g = parse_instance("path\nweights: 0.5 2 0.25").unwrap();
        assert!(g.is_path());
        assert_eq!(g.weight(0), &ratio(1, 2));
        assert_eq!(g.weight(2), &ratio(1, 4));
    }

    #[test]
    fn parses_general_graph() {
        let g = parse_instance("graph\nweights: 1 2 3\nedges: 0-1 1-2 2-0").unwrap();
        assert_eq!(g.m(), 3);
        assert_eq!(g.weight(2), &int(3));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_instance("\n# heading\nring  # inline\nweights: 1 1 1 # w\n\n").unwrap();
        assert_eq!(g.n(), 3);
    }

    #[test]
    fn error_reporting() {
        assert!(parse_instance("").is_err());
        assert!(parse_instance("ring\n").is_err());
        let (line, message) = parse_err("ring\nweights: 1 x 3");
        assert_eq!(line, 2);
        assert!(message.contains('x'));
        let (_, message) = parse_err("graph\nweights: 1 2\nedges: 0_1");
        assert!(message.contains("0_1"));
        assert!(parse_instance("torus\nweights: 1 2 3").is_err());
        // Graphs need edges.
        assert!(parse_instance("graph\nweights: 1 2").is_err());
        // Invalid topology bubbles up the GraphError text.
        let (_, message) = parse_err("graph\nweights: 1 2\nedges: 0-0");
        assert!(message.contains("self-loop"));
    }
}
