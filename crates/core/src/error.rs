//! The workspace-level error type.
//!
//! Session-first APIs ([`crate::RingInstance`], [`crate::parse`]) return one
//! [`Error`] end to end instead of leaking each layer's own enum; the
//! per-crate types ([`prs_bd::BdError`], [`prs_graph::GraphError`]) convert
//! in via `From`, so `?` composes across the stack.

use prs_bd::BdError;
use prs_graph::GraphError;
use std::fmt;

/// Any failure the `prs` stack can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A decomposition failure (degenerate instance).
    Bd(BdError),
    /// A graph-construction failure (bad topology or weights).
    Graph(GraphError),
    /// An instance-file parse failure, with its 1-based line number
    /// (0 for file-level problems like a missing directive).
    Parse {
        /// Line the error was detected on.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Bd(e) => write!(f, "{e}"),
            Error::Graph(e) => write!(f, "{e}"),
            Error::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Bd(e) => Some(e),
            Error::Graph(e) => Some(e),
            Error::Parse { .. } => None,
        }
    }
}

impl From<BdError> for Error {
    fn from(e: BdError) -> Self {
        Error::Bd(e)
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        Error::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let bd: Error = BdError::EmptyGraph.into();
        assert!(matches!(bd, Error::Bd(BdError::EmptyGraph)));
        let graph: Error = GraphError::SelfLoop { vertex: 3 }.into();
        assert!(graph.to_string().contains("self-loop"));
        let parse = Error::Parse {
            line: 2,
            message: "invalid weight `x`".into(),
        };
        assert_eq!(parse.to_string(), "line 2: invalid weight `x`");
    }

    #[test]
    fn question_mark_composes() {
        fn build() -> Result<prs_graph::Graph, Error> {
            let g = prs_graph::builders::ring(vec![
                prs_numeric::int(1),
                prs_numeric::int(2),
                prs_numeric::int(3),
            ])?;
            prs_bd::decompose(&g)?;
            Ok(g)
        }
        assert!(build().is_ok());
    }
}
