#![warn(missing_docs)]
//! # prs-core — resource sharing over rings: the paper, as a library
//!
//! Facade crate for the reproduction of *“Tightening Up the Incentive Ratio
//! for Resource Sharing Over the Rings”* (Cheng, Deng, Li — IPPS 2020).
//! It re-exports the whole stack and adds two high-level entry points:
//!
//! * [`RingInstance`] — one weighted ring with every analysis the paper
//!   performs available as a method: the bottleneck decomposition, the BD
//!   allocation and its Proposition 6 utilities, proportional response
//!   convergence, misreport sweeps, and the Sybil attack with its incentive
//!   ratio.
//! * [`audit::audit_paper_claims`] — run the full battery of executable
//!   theorem checks (Prop. 3, Prop. 6, Lemma 9, Prop. 11, Thm. 10,
//!   Lemmas 14/20, the stage Lemmas, Thm. 8) on one instance and report
//!   which held. Integration tests and the experiment harness call this on
//!   thousands of instances.
//!
//! ## Quickstart
//!
//! ```
//! use prs_core::RingInstance;
//! use prs_core::prelude::*;
//!
//! // A 4-ring with weights 5, 1, 4, 2.
//! let ring = RingInstance::from_integers(&[5, 1, 4, 2]).unwrap();
//!
//! // Equilibrium utilities under the BD mechanism (Proposition 6).
//! let utilities = ring.equilibrium_utilities();
//! assert_eq!(utilities.iter().sum::<Rational>(), ring.graph().total_weight());
//!
//! // How much can agent 0 gain by a Sybil attack? Never more than 2×.
//! let outcome = ring.sybil_attack(0, &AttackConfig::default());
//! assert!(outcome.ratio <= Rational::from_integer(2));   // Theorem 8
//! ```

pub mod audit;
pub mod error;
pub mod instance;
pub mod parse;

pub use error::Error;
pub use instance::RingInstance;

/// Convenient glob-import surface, session-first: the warm-started
/// [`DecompositionSession`](prs_bd::DecompositionSession) and its pool are
/// the intended entry points for anything that decomposes more than one
/// graph.
pub mod prelude {
    pub use crate::audit::{audit_paper_claims, PaperAudit};
    pub use crate::error::Error;
    pub use crate::instance::RingInstance;
    pub use crate::parse::parse_instance;
    pub use prs_bd::{
        allocate, decompose, decompose_exact, AgentClass, Allocation, BdError,
        BottleneckDecomposition, CellMoebius, DecompositionSession, Delta, EdgeOp, SessionConfig,
        SessionPool, SessionStats, ShardPool, StabilityCell, UpdateOutcome,
    };
    pub use prs_deviation::{
        classify_prop11, stability_cells, sweep, AlphaSample, GraphFamily, MisreportFamily,
        Prop11Case, ShapeInterval, SweepConfig, SweepResult,
    };
    pub use prs_dynamics::{ExactEngine, F64Engine};
    pub use prs_graph::{builders, Graph, GraphError, VertexId, VertexSet};
    pub use prs_numeric::{int, ratio, BigInt, BigUint, Rational};
    pub use prs_p2psim::{
        MembershipEvent, MembershipOutcome, SoaSwarm, Strategy, Swarm, SwarmConfig,
    };
    pub use prs_sybil::{
        best_sybil_split, check_ring_theorem8, classify_initial_path, honest_split,
        worst_case_search, AttackConfig, GeneralAttackConfig, InitialPathCase, SybilOutcome,
    };
}

// Re-export the component crates under stable names.
pub use prs_bd as bd;
pub use prs_deviation as deviation;
pub use prs_dynamics as dynamics;
pub use prs_eg as eg;
pub use prs_flow as flow;
pub use prs_graph as graph;
pub use prs_numeric as numeric;
pub use prs_p2psim as p2psim;
pub use prs_sybil as sybil;
pub use prs_trace as trace;
