//! One-call executable audit of every paper claim on a concrete instance.
//!
//! `audit_paper_claims` runs the full battery; each check is exact unless
//! its component documents otherwise. The experiment harness and the
//! integration tests call this over large instance families — a single
//! failure would be a counterexample to the corresponding published result.

use crate::instance::RingInstance;
use prs_bd::allocate;
use prs_deviation::{sweep, MisreportFamily, SweepConfig};
use prs_numeric::Rational;
use prs_sybil::attack::AttackConfig;
use prs_sybil::stages::audit_stages;
use prs_sybil::{classify_initial_path, lemma9_check};

/// Which paper claims held on an instance (field per claim).
#[derive(Clone, Debug)]
pub struct PaperAudit {
    /// Proposition 3: decomposition invariants.
    pub prop3: bool,
    /// Proposition 6 / Definition 5: allocation feasibility + utilities.
    pub prop6: bool,
    /// Lemma 9: honest split is payoff-neutral (every agent).
    pub lemma9: bool,
    /// Theorem 10: misreport utility monotone (sampled agents).
    pub theorem10: bool,
    /// Proposition 11: α_v(x) monotone per class segment (sampled agents).
    pub prop11: bool,
    /// Lemmas 14/20: every initial path fits a published case.
    pub cases: bool,
    /// Stage lemmas 16/18/22/24 along optimal trajectories.
    pub stages: bool,
    /// Theorem 8 upper bound: ζ_v ≤ 2 for every agent.
    pub theorem8: bool,
    /// Largest incentive ratio observed.
    pub max_ratio: Rational,
}

impl PaperAudit {
    /// True iff every audited claim held.
    pub fn all_hold(&self) -> bool {
        self.prop3
            && self.prop6
            && self.lemma9
            && self.theorem10
            && self.prop11
            && self.cases
            && self.stages
            && self.theorem8
    }
}

/// Audit every claim on `ring`. `attack_cfg` controls the Sybil optimizer;
/// `sweep_grid` the misreport sampling density.
pub fn audit_paper_claims(
    ring: &RingInstance,
    attack_cfg: &AttackConfig,
    sweep_grid: usize,
) -> PaperAudit {
    let g = ring.graph();
    let n = ring.n();

    // Prop 3.
    let prop3 = ring.decomposition().check_proposition3(g).is_ok();

    // Prop 6: allocation budget balance + utility formula.
    let alloc = allocate(g, ring.decomposition());
    let prop6 = alloc.check_budget_balance(g).is_ok()
        && (0..n).all(|v| alloc.utility(v) == ring.equilibrium_utility(v));

    // Lemma 9 for every agent.
    let lemma9 = (0..n).all(|v| {
        let (honest, split) = lemma9_check(g, v);
        honest == split
    });

    // Theorem 10 + Prop 11 on sampled agents (sweeps are the cost center).
    let mut theorem10 = true;
    let mut prop11 = true;
    for v in 0..n {
        let fam = MisreportFamily::new(g.clone(), v);
        let res = sweep(
            &fam,
            &SweepConfig::new()
                .with_grid(sweep_grid)
                .with_refine_bits(16),
        );
        let rep = prs_deviation::check_theorem10_monotonicity(&fam, &res);
        theorem10 &= rep.monotone;
        let series: Vec<_> = res
            .samples
            .iter()
            .filter(|s| s.x.is_positive())
            .map(|s| (s.x.clone(), s.alpha.clone(), s.class))
            .collect();
        prop11 &= prs_deviation::prop11::check_prop11_monotonicity(&series).is_ok();
    }

    // Cases + stages + Theorem 8.
    let mut cases = true;
    let mut stages = true;
    let mut theorem8 = true;
    let mut max_ratio = Rational::zero();
    let two = Rational::from_integer(2);
    for v in 0..n {
        // classify_initial_path panics on a counterexample; use catch via
        // explicit call — the classification is total by Lemmas 14/20, so a
        // panic is a refutation. We rely on the library's own assertion.
        let _report = classify_initial_path(g, v);
        cases &= true;

        let out = ring.sybil_attack(v, attack_cfg);
        if out.ratio > max_ratio {
            max_ratio = out.ratio.clone();
        }
        theorem8 &= out.ratio <= two;

        let w2_star = g.weight(v) - &out.best.w1;
        if let Some(rep) = audit_stages(g, v, &out.best.w1, &w2_star) {
            stages &= rep.all_hold();
        }
    }

    PaperAudit {
        prop3,
        prop6,
        lemma9,
        theorem10,
        prop11,
        cases,
        stages,
        theorem8,
        max_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> AttackConfig {
        AttackConfig::new()
            .with_grid(12)
            .with_zoom_levels(2)
            .with_keep(2)
    }

    #[test]
    fn audit_passes_on_handpicked_rings() {
        for weights in [
            vec![1i64, 1, 1],
            vec![5, 1, 4, 2],
            vec![10, 1, 10, 1],
            vec![3, 1, 4, 1, 5],
        ] {
            let ring = RingInstance::from_integers(&weights).unwrap();
            let audit = audit_paper_claims(&ring, &quick_cfg(), 12);
            assert!(audit.all_hold(), "audit failed on {weights:?}: {audit:?}");
        }
    }

    #[test]
    fn max_ratio_bounded() {
        let ring = RingInstance::from_integers(&[8, 1, 2, 1]).unwrap();
        let audit = audit_paper_claims(&ring, &quick_cfg(), 8);
        assert!(audit.max_ratio >= Rational::one());
        assert!(audit.max_ratio <= Rational::from_integer(2));
    }
}
