//! Facade-surface tests: everything a downstream user reaches through
//! `prs_core::prelude` works together without touching component crates.

use prs_core::prelude::*;
use prs_core::RingInstance;

#[test]
fn prelude_covers_the_full_workflow() {
    // Build.
    let ring = RingInstance::from_integers(&[6, 2, 4, 3, 5]).unwrap();

    // Decompose + classes.
    let bd = ring.decomposition();
    assert!(bd.k() >= 1);
    let _classes: Vec<AgentClass> = (0..ring.n()).map(|v| ring.class_of(v)).collect();

    // Allocate.
    let alloc: Allocation = ring.allocation();
    alloc.check_budget_balance(ring.graph()).unwrap();

    // Dynamics. (This instance's terminal pair has α = 1, where the
    // dynamics converge sublinearly — tolerance chosen accordingly.)
    let report = ring.run_dynamics(1e-5, 500_000);
    assert!(report.converged);

    // Misreport analysis.
    let case: Prop11Case = ring.misreport_case(0, 20);
    let fam = MisreportFamily::new(ring.graph().clone(), 0);
    let res = sweep(&fam, &SweepConfig::default());
    assert!(!res.samples.is_empty());
    match case {
        Prop11Case::B1 | Prop11Case::B2 | Prop11Case::B3 { .. } => {}
    }

    // Sybil attack + case + audit.
    let attack: SybilOutcome = ring.sybil_attack(
        0,
        &AttackConfig::new()
            .with_grid(12)
            .with_zoom_levels(2)
            .with_keep(2),
    );
    assert!(attack.ratio <= Rational::from_integer(2));
    let case = classify_initial_path(ring.graph(), 0);
    assert!(matches!(
        case.case,
        InitialPathCase::C1 | InitialPathCase::C2 | InitialPathCase::C3 | InitialPathCase::D1
    ));

    // Swarm.
    let mut swarm = Swarm::new(ring.graph());
    let metrics = swarm.run(&SwarmConfig::default());
    assert!(metrics.converged);

    // Full audit.
    let audit: PaperAudit = audit_paper_claims(
        &ring,
        &AttackConfig::new()
            .with_grid(10)
            .with_zoom_levels(2)
            .with_keep(2),
        8,
    );
    assert!(audit.all_hold(), "{audit:?}");
}

#[test]
fn component_crate_reexports_are_reachable() {
    // Spot-check the `prs_core::<crate>` aliases used in examples and docs.
    let g = prs_core::graph::builders::figure1_example();
    let bd = prs_core::bd::decompose(&g).unwrap();
    assert_eq!(bd.k(), 2);
    let _one = prs_core::numeric::Rational::one();
    let _cfg = prs_core::eg::EgConfig::default();
    let _sched = prs_core::dynamics::Schedule::RoundRobin;
    let _ = prs_core::sybil::theorem8::lower_bound_ring(2);
    let _ = prs_core::deviation::SweepConfig::default();
    let _net = prs_core::flow::FlowNetwork::new(2);
    let _ = prs_core::p2psim::Strategy::Honest;
}

#[test]
fn ring_instance_debug_is_informative() {
    let ring = RingInstance::from_integers(&[1, 2, 3]).unwrap();
    let s = format!("{ring:?}");
    assert!(s.contains("weights"), "{s}");
    assert!(s.contains("pairs"), "{s}");
}

#[test]
fn honest_split_accessible_from_instance() {
    let ring = RingInstance::from_integers(&[5, 1, 4, 2]).unwrap();
    for v in 0..4 {
        let (w1, w2) = ring.honest_split(v);
        assert_eq!(&w1 + &w2, ring.graph().weight(v).clone());
    }
}
