//! `prs-lint`: the workspace static-analysis suite behind `cargo xtask lint`.
//!
//! The paper's exact decomposition only proves anything if the code keeps
//! its promises: floats propose but never decide, library code fails with
//! typed errors, sweeps are deterministic, and the public surface stays
//! documented and builder-extensible. This crate checks those promises on
//! every file, token by token, with a counted escape hatch per rule.
//!
//! Layers:
//! * [`lexer`] — a small Rust tokenizer (comments, strings, lifetimes,
//!   float vs. integer literals) that never fails;
//! * [`allow`] — the `// prs-lint: allow(RULE, reason = "...")` grammar;
//! * [`graph`] — per-file item tables (fn defs, call/lock/panic sites,
//!   trace-name literals) linked into an approximate workspace call graph;
//! * [`rules`] — the per-file rule passes, the workspace (call-graph)
//!   rules, and the file walker.
//!
//! The rules and their paper rationale are documented in `docs/ANALYSIS.md`.

pub mod allow;
pub mod graph;
pub mod lexer;
pub mod rules;

pub use rules::{registry_content, run, AllowedSite, Finding, LintConfig, Report};

use std::path::PathBuf;

/// Lint the workspace rooted at `root` with the standard rule map.
pub fn run_lint(root: PathBuf) -> std::io::Result<Report> {
    rules::run(&LintConfig::workspace(root))
}
