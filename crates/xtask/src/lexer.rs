//! A small, self-contained Rust lexer for `prs-lint`.
//!
//! The build environment is offline (no `syn`), so the lint rules run over a
//! token stream produced here instead of a full AST. The lexer understands
//! everything the rules need to be *sound at the token level*: line and
//! block comments (nested), doc comments, string/char literals (including
//! raw and byte strings), lifetimes vs. char literals, and float vs. integer
//! numeric literals. Rules that need structure (test-module regions, item
//! scopes for allow annotations, struct field lists) recover it from brace
//! depth, which the token stream makes exact because no brace inside a
//! comment, string, or char literal survives lexing.

/// One code token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// What the token is.
    pub kind: TokKind,
}

/// Token classification — only as fine-grained as the rules require.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`f64`, `as`, `unwrap`, `pub`, …).
    Ident(String),
    /// An integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `1e-9`, `2f64`, `1.`).
    Float,
    /// A string literal of any flavor (`"x"`, `r#"x"#`, `b"x"`), carrying
    /// its uninterpreted body (escapes are not processed — the workspace
    /// rules only ever match plain identifiers and dotted names).
    Str(String),
    /// A char literal (`'a'`, `'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Any single punctuation character (`{`, `}`, `;`, `.`, `!`, …).
    Punct(char),
}

/// One comment, with the `//` / `/*` marker stripped.
///
/// Doc comments keep their distinguishing first character: `/// x` lexes to
/// text `"/ x"` and `//! x` to `"! x"`, so `text.starts_with('/')` detects
/// outer doc comments.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//` comments).
    pub end_line: u32,
    /// Comment body without the leading `//` or surrounding `/* */`.
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (not interleaved with `tokens`).
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Brace depth immediately *before* each token (`depth[i]` is the number
    /// of unclosed `{` when token `i` starts).
    pub fn depths(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.tokens.len());
        let mut d: u32 = 0;
        for t in &self.tokens {
            out.push(d);
            match t.kind {
                TokKind::Punct('{') => d += 1,
                TokKind::Punct('}') => d = d.saturating_sub(1),
                _ => {}
            }
        }
        out
    }

    /// True if any code token sits on `line`.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }
}

/// Lex `src` into tokens + comments. Never fails: unknown bytes become
/// `Punct` tokens, and an unterminated literal consumes to end of file —
/// for a linter, graceful degradation beats aborting the whole run.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: chars[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let start = i + 2;
                let mut j = start;
                let mut depth = 1u32;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: chars[start..end.min(chars.len())].iter().collect(),
                });
                i = j;
            }
            '\'' => {
                // Lifetime or char literal. `'a` (lifetime) vs `'a'` (char).
                let next = chars.get(i + 1).copied();
                let after = chars.get(i + 2).copied();
                if next == Some('\\') {
                    // Escaped char literal: consume to the closing quote.
                    let mut j = i + 2;
                    if j < chars.len() {
                        j += 1; // the escaped character itself
                    }
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Char,
                    });
                    i = (j + 1).min(chars.len());
                } else if after == Some('\'') && next != Some('\'') {
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Char,
                    });
                    i += 3;
                } else if next.map(is_ident_start).unwrap_or(false) {
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_cont(chars[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Lifetime,
                    });
                    i = j;
                } else {
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Punct('\''),
                    });
                    i += 1;
                }
            }
            '"' => {
                let end = consume_string(&chars, i, &mut line);
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Str(string_body(&chars, i, end)),
                });
                i = end;
            }
            c if c.is_ascii_digit() => {
                let (j, float) = consume_number(&chars, i);
                out.tokens.push(Token {
                    line,
                    kind: if float { TokKind::Float } else { TokKind::Int },
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < chars.len() && is_ident_cont(chars[j]) {
                    j += 1;
                }
                let ident: String = chars[i..j].iter().collect();
                // String prefixes: r"", b"", br"", c"", cr"" and their `#`
                // raw forms. The prefix ident is immediately followed by the
                // quote (or `#`s for raw strings).
                let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "c" | "cr");
                if is_str_prefix
                    && (chars.get(j) == Some(&'"')
                        || (ident.contains('r') && chars.get(j) == Some(&'#')))
                {
                    let raw = ident.contains('r');
                    let (end, body) = if raw {
                        let hashes = chars[j..].iter().take_while(|&&c| c == '#').count();
                        let end = consume_raw_string(&chars, j, &mut line);
                        let open = j + hashes; // the `"` after the hashes
                        let stop = end.saturating_sub(hashes + 1).max(open + 1);
                        let body = chars[(open + 1).min(end)..stop.min(chars.len())]
                            .iter()
                            .collect();
                        (end, body)
                    } else {
                        let end = consume_string(&chars, j, &mut line);
                        (end, string_body(&chars, j, end))
                    };
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Str(body),
                    });
                    i = end;
                } else {
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Ident(ident),
                    });
                    i = j;
                }
            }
            other => {
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Punct(other),
                });
                i += 1;
            }
        }
    }
    out
}

/// The body of a non-raw string lexed from `open` (the `"`) to `end` (just
/// past the closing quote, or end of file if unterminated).
fn string_body(chars: &[char], open: usize, end: usize) -> String {
    let start = (open + 1).min(end);
    let stop = if end > start && chars.get(end - 1) == Some(&'"') {
        end - 1
    } else {
        end
    };
    chars[start..stop.min(chars.len())].iter().collect()
}

/// Consume a non-raw string starting at the opening `"`; returns the index
/// just past the closing quote.
fn consume_string(chars: &[char], open: usize, line: &mut u32) -> usize {
    let mut j = open + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Consume a raw string starting at the first `#` or `"` after the prefix;
/// returns the index just past the closing delimiter.
fn consume_raw_string(chars: &[char], mut j: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return j; // not actually a raw string; bail without consuming
    }
    j += 1;
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
        } else if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    j
}

/// Consume a numeric literal starting at a digit; returns (end index,
/// is_float). Handles hex/octal/binary prefixes, `_` separators, `1.5`,
/// `1.` (a float unless followed by an identifier or `.`), exponents, and
/// `f32`/`f64` suffixes. Tuple indices (`t.0`) and ranges (`0..n`) stay
/// integers.
fn consume_number(chars: &[char], start: usize) -> (usize, bool) {
    let mut j = start;
    let radix_prefixed = chars[start] == '0'
        && matches!(
            chars.get(start + 1),
            Some('x') | Some('X') | Some('o') | Some('O') | Some('b') | Some('B')
        );
    if radix_prefixed {
        j += 2;
        while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (j, false);
    }
    let mut float = false;
    while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    if chars.get(j) == Some(&'.') {
        let after = chars.get(j + 1).copied();
        let is_range = after == Some('.');
        let is_field = after
            .map(|c| c.is_alphabetic() || c == '_')
            .unwrap_or(false);
        if !is_range && !is_field {
            float = true;
            j += 1;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    if matches!(chars.get(j), Some('e') | Some('E')) {
        let mut k = j + 1;
        if matches!(chars.get(k), Some('+') | Some('-')) {
            k += 1;
        }
        if chars.get(k).map(|c| c.is_ascii_digit()).unwrap_or(false) {
            float = true;
            j = k;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix: `2f64` / `1.5f32` are floats; `7u32` stays an integer.
    if chars.get(j).map(|c| c.is_alphabetic()).unwrap_or(false) {
        let mut k = j;
        while k < chars.len() && (chars[k].is_ascii_alphanumeric() || chars[k] == '_') {
            k += 1;
        }
        let suffix: String = chars[j..k].iter().collect();
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
        j = k;
    }
    (j, float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let l = lex("let x = \"f64 { } unwrap()\"; // f64 here\n/* as u32 */ y");
        assert_eq!(idents("let x = \"f64\";"), vec!["let", "x"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("f64 here"));
        assert!(l.comments[1].text.contains("as u32"));
        assert!(!l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident("unwrap".into())));
    }

    #[test]
    fn doc_comments_keep_marker() {
        let l = lex("/// outer\n//! inner\n// plain\nfn f() {}");
        assert!(l.comments[0].text.starts_with('/'));
        assert!(l.comments[1].text.starts_with('!'));
        assert!(!l.comments[2].text.starts_with('/'));
    }

    #[test]
    fn raw_and_byte_strings() {
        let l = lex(r##"let s = r#"f64 "quoted" unwrap"#; let b = b"as"; let r = r"x";"##);
        let bodies: Vec<&str> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(bodies, vec![r#"f64 "quoted" unwrap"#, "as", "x"]);
        assert!(!idents(r##"r#"f64"#"##).contains(&"f64".to_string()));
    }

    #[test]
    fn string_bodies_are_captured() {
        let l = lex(r#"span("flow", "exact_bfs_phase"); Counter::new("bd.session_hits");"#);
        let bodies: Vec<&str> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(bodies, vec!["flow", "exact_bfs_phase", "bd.session_hits"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let s = ' '; }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let charlits = l.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(charlits, 3);
    }

    #[test]
    fn float_vs_integer_literals() {
        let kinds = |src: &str| {
            lex(src)
                .tokens
                .into_iter()
                .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
                .map(|t| t.kind)
                .collect::<Vec<_>>()
        };
        assert_eq!(kinds("1.0 1e-9 2f64 1."), vec![TokKind::Float; 4]);
        assert_eq!(kinds("42 0xff 1_000u64 7u32"), vec![TokKind::Int; 4]);
        // Ranges and tuple/field access stay integers.
        assert_eq!(kinds("0..n"), vec![TokKind::Int]);
        assert_eq!(kinds("t.0"), vec![TokKind::Int]);
        assert_eq!(kinds("1.max(2)"), vec![TokKind::Int, TokKind::Int]);
    }

    #[test]
    fn lines_and_depths() {
        let l = lex("fn f() {\n    g();\n}\n");
        assert_eq!(l.tokens.first().unwrap().line, 1);
        assert_eq!(l.tokens.last().unwrap().line, 3);
        let d = l.depths();
        assert_eq!(*d.last().unwrap(), 1); // depth before the closing brace
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].kind, TokKind::Ident("code".into()));
    }
}
