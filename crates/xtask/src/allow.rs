//! The `prs-lint` allow-annotation grammar.
//!
//! Every rule has one escape hatch, and the hatch is itself counted and
//! reported (see `Report::allowed`). Grammar, in a plain `//` comment:
//!
//! ```text
//! // prs-lint: allow(RULE[, RULE...], reason = "WHY")
//! // prs-lint: allow-file(RULE[, RULE...], reason = "WHY")
//! ```
//!
//! * `allow` on its own line covers the item or statement that starts on
//!   the next code line, through its closing brace or terminating `;`
//!   (so one annotation above `fn to_f64` covers the whole function).
//! * `allow` trailing a code line covers that line only.
//! * `allow-file` covers the whole file for the listed rules.
//! * `reason` is mandatory and must be non-empty: an allow without an
//!   argument is itself a lint violation (`annotation`), so the escape
//!   hatch can never silently rot.

use crate::lexer::{Lexed, TokKind};

/// Rule names an annotation may reference.
pub const RULE_NAMES: &[&str] = &[
    "float",
    "cast",
    "panic",
    "hash-iter",
    "api-doc",
    "non-exhaustive",
    "proptest-regressions",
    "panic-reach",
    "lock-order",
    "trace-registry",
];

/// One parsed allow annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rules this annotation silences.
    pub rules: Vec<String>,
    /// The mandatory human rationale.
    pub reason: String,
    /// First covered line (1-based, inclusive).
    pub start_line: u32,
    /// Last covered line (inclusive). `u32::MAX` for `allow-file`.
    pub end_line: u32,
    /// Line the annotation comment itself sits on (for reporting).
    pub comment_line: u32,
    /// True for `allow-file`.
    pub file_level: bool,
    /// Set when a rule pass actually uses this annotation; an allow that
    /// silences nothing is reported as stale.
    pub used: std::cell::Cell<bool>,
}

/// A malformed annotation: where and why.
#[derive(Debug, Clone)]
pub struct BadAnnotation {
    /// Line of the offending comment.
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

/// Extract all `prs-lint:` annotations from a lexed file.
pub fn collect_allows(lexed: &Lexed) -> (Vec<Allow>, Vec<BadAnnotation>) {
    let depths = lexed.depths();
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        // Doc comments (`///`, `//!`) are documentation, not directives.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let body = c.text.trim();
        let Some(rest) = body.strip_prefix("prs-lint:") else {
            // Catch near-miss spellings so a typo'd directive fails loudly
            // instead of silently not applying.
            if body.contains("prs-lint") {
                bad.push(BadAnnotation {
                    line: c.line,
                    message: "malformed directive: expected `prs-lint: allow(...)`".into(),
                });
            }
            continue;
        };
        match parse_directive(rest.trim()) {
            Ok((rules, reason, file_level)) => {
                let (start, end) = if file_level {
                    (0, u32::MAX)
                } else if lexed.line_has_code(c.line) {
                    (c.line, c.line) // trailing: this line only
                } else {
                    scope_after(lexed, &depths, c.end_line)
                };
                allows.push(Allow {
                    rules,
                    reason,
                    start_line: start,
                    end_line: end,
                    comment_line: c.line,
                    file_level,
                    used: std::cell::Cell::new(false),
                });
            }
            Err(msg) => bad.push(BadAnnotation {
                line: c.line,
                message: msg,
            }),
        }
    }
    (allows, bad)
}

/// Parse `allow(...)` / `allow-file(...)`; returns (rules, reason, is_file).
fn parse_directive(s: &str) -> Result<(Vec<String>, String, bool), String> {
    let (file_level, args) = if let Some(rest) = s.strip_prefix("allow-file") {
        (true, rest)
    } else if let Some(rest) = s.strip_prefix("allow") {
        (false, rest)
    } else {
        return Err(format!(
            "unknown directive `{s}`: expected `allow(...)` or `allow-file(...)`"
        ));
    };
    let args = args.trim();
    let inner = args
        .strip_prefix('(')
        .and_then(|a| a.strip_suffix(')'))
        .ok_or_else(|| "expected `(` rules..., reason = \"...\" `)`".to_string())?;
    let (rules_part, reason_part) = inner
        .split_once("reason")
        .ok_or_else(|| "missing mandatory `reason = \"...\"`".to_string())?;
    let reason_part = reason_part.trim_start();
    let reason_part = reason_part
        .strip_prefix('=')
        .ok_or_else(|| "expected `=` after `reason`".to_string())?
        .trim();
    let reason = reason_part
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "reason must be a quoted string".to_string())?
        .trim()
        .to_string();
    if reason.is_empty() {
        return Err("reason must not be empty".into());
    }
    let mut rules = Vec::new();
    for raw in rules_part.split(',') {
        let name = raw.trim();
        if name.is_empty() {
            continue;
        }
        if !RULE_NAMES.contains(&name) {
            return Err(format!(
                "unknown rule `{name}` (known: {})",
                RULE_NAMES.join(", ")
            ));
        }
        rules.push(name.to_string());
    }
    if rules.is_empty() {
        return Err("at least one rule name is required".into());
    }
    Ok((rules, reason, file_level))
}

/// The line span of the item or statement that starts after `after_line`:
/// from its first token through the matching `}` of the first brace it opens
/// at its own depth, or through the `;` that terminates it — whichever
/// comes first.
fn scope_after(lexed: &Lexed, depths: &[u32], after_line: u32) -> (u32, u32) {
    let Some(first) = lexed.tokens.iter().position(|t| t.line > after_line) else {
        return (after_line + 1, after_line + 1);
    };
    let start_line = lexed.tokens[first].line;
    let d0 = depths[first];
    let mut cur = d0;
    let mut opened = false;
    for (i, t) in lexed.tokens.iter().enumerate().skip(first) {
        match t.kind {
            TokKind::Punct('{') => {
                if cur == d0 {
                    opened = true;
                }
                cur += 1;
            }
            TokKind::Punct('}') => {
                cur = cur.saturating_sub(1);
                if cur < d0 || (opened && cur == d0) {
                    return (start_line, lexed.tokens[i].line);
                }
            }
            TokKind::Punct(';') if cur == d0 && !opened => {
                return (start_line, t.line);
            }
            _ => {}
        }
    }
    let end = lexed.tokens.last().map(|t| t.line).unwrap_or(start_line);
    (start_line, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_scope_allow_covers_whole_body() {
        let src = "\
// prs-lint: allow(float, reason = \"demo\")
pub fn to_f64(x: u32) -> f64 {
    let y = 1.0;
    y
}
let after = 1.0;
";
        let (allows, bad) = collect_allows(&lex(src));
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!((allows[0].start_line, allows[0].end_line), (2, 5));
    }

    #[test]
    fn statement_scope_ends_at_semicolon() {
        let src = "\
// prs-lint: allow(panic, reason = \"poison propagation\")
let g = m.lock().expect(\"poisoned\");
let h = other();
";
        let (allows, _) = collect_allows(&lex(src));
        assert_eq!((allows[0].start_line, allows[0].end_line), (2, 2));
    }

    #[test]
    fn trailing_allow_covers_one_line() {
        let src = "let x = v[0].unwrap(); // prs-lint: allow(panic, reason = \"len checked above\")\nlet y = 1;\n";
        let (allows, _) = collect_allows(&lex(src));
        assert_eq!((allows[0].start_line, allows[0].end_line), (1, 1));
    }

    #[test]
    fn file_level_and_multi_rule() {
        let src = "// prs-lint: allow-file(cast, float, reason = \"limb arithmetic\")\nfn f() {}\n";
        let (allows, bad) = collect_allows(&lex(src));
        assert!(bad.is_empty());
        assert!(allows[0].file_level);
        assert_eq!(allows[0].rules, vec!["cast", "float"]);
    }

    #[test]
    fn malformed_directives_are_reported() {
        for bad_src in [
            "// prs-lint: allow(float)\n",                    // missing reason
            "// prs-lint: allow(float, reason = \"\")\n",     // empty reason
            "// prs-lint: allow(nonsense, reason = \"x\")\n", // unknown rule
            "// prs-lint allow(float, reason = \"x\")\n",     // missing colon
            "// prs-lint: permit(float, reason = \"x\")\n",   // unknown verb
            "// prs-lint: allow(reason = \"x\")\n",           // no rules
        ] {
            let (allows, bad) = collect_allows(&lex(bad_src));
            assert!(allows.is_empty(), "{bad_src}");
            assert_eq!(bad.len(), 1, "{bad_src}");
        }
    }
}
