//! `cargo xtask <command>` — workspace automation driver.
//!
//! Commands:
//! * `lint [-v|--verbose]` — run the `prs-lint` rule suite over the
//!   workspace. Exit code 1 if any rule fires. `-v` additionally lists
//!   every allow-annotated site with its reason.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let verbose = args.iter().any(|a| a == "-v" || a == "--verbose");
            lint(verbose)
        }
        Some(other) => {
            eprintln!("unknown xtask command `{other}` (available: lint)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint [-v]");
            ExitCode::from(2)
        }
    }
}

fn lint(verbose: bool) -> ExitCode {
    let root = workspace_root();
    let report = match prs_lint::run_lint(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }

    if verbose {
        for a in &report.allowed {
            println!("{}:{}: allowed [{}] — {}", a.file, a.line, a.rule, a.reason);
        }
    }

    let by_rule = report.allowed_by_rule();
    if !by_rule.is_empty() {
        let summary: Vec<String> = by_rule
            .iter()
            .map(|(rule, n)| format!("{rule}: {n}"))
            .collect();
        println!("allowed sites — {}", summary.join(", "));
    }

    if report.findings.is_empty() {
        println!(
            "prs-lint: clean ({} allow-annotated sites)",
            report.allowed.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("prs-lint: {} violation(s)", report.findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, two up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}
