//! `cargo xtask <command>` — workspace automation driver.
//!
//! Commands:
//! * `lint [-v|--verbose] [--json]` — run the `prs-lint` rule suite over
//!   the workspace. Exit code 1 if any rule fires. `-v` additionally lists
//!   every allow-annotated site with its reason; `--json` replaces the
//!   human output with the machine-readable report (fixed key order,
//!   sorted findings) that CI archives as an artifact.
//! * `registry [--write]` — print the canonical trace-name registry for
//!   the current tree; `--write` rewrites `docs/trace-registry.txt` in
//!   place (the file the `trace-registry` lint diffs against).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let verbose = args.iter().any(|a| a == "-v" || a == "--verbose");
            let json = args.iter().any(|a| a == "--json");
            lint(verbose, json)
        }
        Some("registry") => registry(args.iter().any(|a| a == "--write")),
        Some(other) => {
            eprintln!("unknown xtask command `{other}` (available: lint, registry)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint [-v] [--json] | registry [--write]");
            ExitCode::from(2)
        }
    }
}

fn lint(verbose: bool, json: bool) -> ExitCode {
    let root = workspace_root();
    let report = match prs_lint::run_lint(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
        return if report.findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }

    if verbose {
        for a in &report.allowed {
            println!("{}:{}: allowed [{}] — {}", a.file, a.line, a.rule, a.reason);
        }
    }

    let by_rule = report.allowed_by_rule();
    if !by_rule.is_empty() {
        let summary: Vec<String> = by_rule
            .iter()
            .map(|(rule, n)| format!("{rule}: {n}"))
            .collect();
        println!("allowed sites — {}", summary.join(", "));
    }

    if report.findings.is_empty() {
        println!(
            "prs-lint: clean ({} allow-annotated sites)",
            report.allowed.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("prs-lint: {} violation(s)", report.findings.len());
        ExitCode::FAILURE
    }
}

fn registry(write: bool) -> ExitCode {
    let root = workspace_root();
    let cfg = prs_lint::LintConfig::workspace(root.clone());
    let content = match prs_lint::registry_content(&cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask registry: i/o error: {e}");
            return ExitCode::from(2);
        }
    };
    if !write {
        print!("{content}");
        return ExitCode::SUCCESS;
    }
    let path = root.join(&cfg.trace_registry);
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("xtask registry: {e}");
            return ExitCode::from(2);
        }
    }
    match std::fs::write(&path, &content) {
        Ok(()) => {
            println!("wrote {}", cfg.trace_registry);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask registry: {e}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, two up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}
