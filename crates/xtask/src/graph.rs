//! Workspace call-graph extraction and linking for the semantic lint rules.
//!
//! The original `prs-lint` rules are per-file token passes; the three
//! workspace rules (`panic-reach`, `lock-order`, `trace-registry`) must see
//! across call boundaries. This module recovers just enough structure from
//! the token stream (the offline build has no `syn`) to build an
//! *approximate* call graph:
//!
//! * per-file item tables ([`FileTable`]): every `fn` definition with the
//!   `impl`/`trait` type that owns it, every call site, every
//!   `Mutex`/`RwLock` acquisition with the set of locks already held at
//!   that point (scope-depth tracking over the token stream), every
//!   panic-family site, and every span / counter name literal;
//! * a linker ([`link`]) that resolves call sites to definitions by name
//!   and module convention, **over-approximating** on ambiguity: a method
//!   call links to every same-named method in the workspace, and a bare
//!   call with no same-crate definition links to every same-named
//!   definition anywhere. A qualified path whose qualifier matches no
//!   workspace type or module (`Vec::new`, `String::from`) is treated as
//!   external and produces no edge — qualified names are the one place the
//!   resolver can be precise without types, which also gives code a way to
//!   *disambiguate deliberately* (UFCS at the call site).
//!
//! The soundness stance is deliberate: the reachability rules would rather
//! report a false chain (silenced with a reasoned allow, or disambiguated
//! with UFCS) than miss a real one through an edge the resolver could not
//! prove. Known precision limits are documented in `docs/ANALYSIS.md`
//! under "workspace analyses".

use crate::lexer::{Lexed, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A span or counter name literal collected for the `trace-registry` rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceName {
    /// The registry line this site demands: `span <layer>.<name>` or
    /// `counter <dotted.name>`.
    pub entry: String,
    /// 1-based line of the name literal.
    pub line: u32,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (the identifier directly before the `(`).
    pub name: String,
    /// `Q` for `Q::name(...)` paths; `Self` is rewritten to the owner.
    pub qualifier: Option<String>,
    /// True for `.name(...)` method syntax.
    pub method: bool,
    /// 1-based line.
    pub line: u32,
    /// Names of locks held when the call executes (sorted, deduped).
    pub held: Vec<String>,
}

/// One panic-family site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What the site is (`.unwrap()`, `panic!`, indexing).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// True for slice/array indexing (gated separately: the lexical rules
    /// never covered indexing, so it is opt-in for `panic-reach`).
    pub indexing: bool,
}

/// One lock acquisition (`.lock()` / `.read()` / `.write()`, empty parens).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// The receiver name standing in for the lock (`free`, `shards`, …).
    pub lock: String,
    /// 1-based line.
    pub line: u32,
    /// Locks already held when this one is acquired.
    pub held: Vec<String>,
}

/// One `fn` definition with everything the workspace rules need.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// The `impl`/`trait` self-type it is defined on, if any.
    pub owner: Option<String>,
    /// 1-based line of the name token.
    pub line: u32,
    /// True for unrestricted `pub` (`pub(crate)` is not library surface).
    pub is_pub: bool,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Panic-family sites in body order.
    pub panics: Vec<PanicSite>,
    /// Lock acquisitions in body order.
    pub locks: Vec<LockSite>,
}

/// The extracted table for one file.
#[derive(Debug, Clone)]
pub struct FileTable {
    /// File path relative to the lint root.
    pub file: String,
    /// Crate name derived from the path (`crates/<name>/…`, else `root`).
    pub krate: String,
    /// Function definitions outside test regions.
    pub fns: Vec<FnDef>,
    /// Span / counter name literals outside test regions.
    pub names: Vec<TraceName>,
}

/// Keywords and variant constructors that look like calls but never are.
const NON_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "else", "break",
    "continue", "await", "where", "let", "mut", "Some", "None", "Ok", "Err",
];

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const BINDING_HEADS: &[&str] = &["let", "match", "if", "while", "for"];

/// One lock acquisition located in the token stream. The guard counts as
/// held for token indices in the exclusive range `(index, until)`.
struct Acq {
    name: String,
    index: usize,
    until: usize,
}

/// A lexical scope frame (pushed per `{`).
struct Frame {
    /// `Some(T)` directly inside `impl T` / `trait T`.
    owner: Option<String>,
    /// Index into the file's `fns` if this brace opened a function body.
    fn_idx: Option<usize>,
}

/// Extract the item table for one file.
///
/// `test_spans` are the `#[cfg(test)]` / `#[test]` line regions; nothing
/// inside them is recorded. `span_const_layers` maps `const` name prefixes
/// to trace layers, for span names that reach the recorder through trait
/// consts rather than call-site literals (`const SPAN_BFS: &'static str =
/// "exact_bfs_phase"` on a `Capacity` impl → `span flow.exact_bfs_phase`).
pub fn extract(
    file: &str,
    krate: &str,
    lexed: &Lexed,
    depths: &[u32],
    test_spans: &[(u32, u32)],
    span_const_layers: &[(String, String)],
) -> FileTable {
    let toks = &lexed.tokens;
    let mask = attr_mask(toks);
    let in_test = |line: u32| test_spans.iter().any(|&(s, e)| line >= s && line <= e);
    let acqs = collect_acquisitions(toks, depths, &mask, &in_test);
    let held_at = |idx: usize| -> Vec<String> {
        let mut v: Vec<String> = acqs
            .iter()
            .filter(|a| a.index < idx && idx < a.until)
            .map(|a| a.name.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    };

    let mut fns: Vec<FnDef> = Vec::new();
    let mut names: Vec<TraceName> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut pending_fn: Option<(String, u32, bool)> = None;

    let ident = |i: usize| match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, c: char| toks.get(i).map(|t| &t.kind) == Some(&TokKind::Punct(c));
    let strlit = |i: usize| match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Str(s)) => Some(s.as_str()),
        _ => None,
    };
    // The innermost enclosing function body, as an index into `fns`.
    let cur = |stack: &[Frame]| stack.iter().rev().find_map(|f| f.fn_idx);

    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let line = toks[i].line;
        match &toks[i].kind {
            TokKind::Punct('{') => {
                let frame = if let Some((name, fline, is_pub)) = pending_fn.take() {
                    // An `impl Trait` in the signature must not leak into
                    // the body's ownership context.
                    pending_impl = None;
                    if in_test(fline) {
                        Frame {
                            owner: None,
                            fn_idx: None,
                        }
                    } else {
                        let owner = stack.iter().rev().find_map(|f| f.owner.clone());
                        fns.push(FnDef {
                            name,
                            owner,
                            line: fline,
                            is_pub,
                            calls: Vec::new(),
                            panics: Vec::new(),
                            locks: Vec::new(),
                        });
                        Frame {
                            owner: None,
                            fn_idx: Some(fns.len() - 1),
                        }
                    }
                } else {
                    Frame {
                        owner: pending_impl.take(),
                        fn_idx: None,
                    }
                };
                stack.push(frame);
            }
            TokKind::Punct('}') => {
                stack.pop();
            }
            TokKind::Punct(';') => {
                // Bodyless signatures (trait methods, `extern` decls).
                pending_fn = None;
                pending_impl = None;
            }
            TokKind::Punct('[') if !in_test(line) => {
                // Indexing: `expr[` where expr ends in an identifier, `]`,
                // or `)`. Attribute brackets, slice types (`: [u8; 4]`),
                // array literals, and macro brackets (`vec![`) all have a
                // different predecessor.
                let is_index = i > 0
                    && !mask[i - 1]
                    && match &toks[i - 1].kind {
                        TokKind::Ident(s) => !NON_CALLEES.contains(&s.as_str()),
                        TokKind::Punct(']') | TokKind::Punct(')') => true,
                        _ => false,
                    };
                if is_index {
                    if let Some(fi) = cur(&stack) {
                        fns[fi].panics.push(PanicSite {
                            what: "indexing `[`".into(),
                            line,
                            indexing: true,
                        });
                    }
                }
            }
            TokKind::Ident(name) => {
                if in_test(line) {
                    continue;
                }
                match name.as_str() {
                    "fn" => {
                        if let Some(fname) = ident(i + 1) {
                            pending_fn =
                                Some((fname.to_string(), toks[i + 1].line, is_pub_fn(toks, i)));
                        }
                        continue;
                    }
                    "impl" => {
                        pending_impl = scan_owner(toks, i, false);
                        continue;
                    }
                    "trait" => {
                        pending_impl = scan_owner(toks, i, true);
                        continue;
                    }
                    _ => {}
                }

                // Trace-name literals -------------------------------------
                if (name == "span" || name == "instant")
                    && punct(i + 1, '(')
                    && !(i > 0 && punct(i - 1, '.'))
                {
                    if let (Some(layer), true, Some(n)) =
                        (strlit(i + 2), punct(i + 3, ','), strlit(i + 4))
                    {
                        names.push(TraceName {
                            entry: format!("span {layer}.{n}"),
                            line,
                        });
                    }
                }
                if name == "new" && i >= 3 && ident(i - 3) == Some("Counter") && punct(i + 1, '(') {
                    if let Some(n) = strlit(i + 2) {
                        names.push(TraceName {
                            entry: format!("counter {n}"),
                            line,
                        });
                    }
                }
                // Declarative counter tables: `IDENT("dotted.name") => …`
                // rows inside the `counters!` macro. The dotted-name
                // requirement keeps `Some("x") =>` match arms out.
                if punct(i + 1, '(') && punct(i + 3, ')') && punct(i + 4, '=') && punct(i + 5, '>')
                {
                    if let Some(n) = strlit(i + 2) {
                        if n.contains('.') {
                            names.push(TraceName {
                                entry: format!("counter {n}"),
                                line,
                            });
                        }
                    }
                }
                // Span names bound to consts: `const SPAN_X: &str = "…";`.
                if i > 0 && ident(i - 1) == Some("const") {
                    for (prefix, layer) in span_const_layers {
                        if !name.starts_with(prefix.as_str()) {
                            continue;
                        }
                        for k in i + 1..(i + 8).min(toks.len()) {
                            if punct(k, '=') {
                                if let Some(n) = strlit(k + 1) {
                                    names.push(TraceName {
                                        entry: format!("span {layer}.{n}"),
                                        line,
                                    });
                                }
                                break;
                            }
                        }
                    }
                }

                // Lock acquisitions ---------------------------------------
                if let Some(acq) = acqs.iter().find(|a| a.index == i) {
                    if let Some(fi) = cur(&stack) {
                        fns[fi].locks.push(LockSite {
                            lock: acq.name.clone(),
                            line,
                            held: held_at(i),
                        });
                    }
                    continue; // a lock call is not also a call site
                }

                // Panic sites ---------------------------------------------
                if PANIC_METHODS.contains(&name.as_str())
                    && i > 0
                    && punct(i - 1, '.')
                    && punct(i + 1, '(')
                {
                    if let Some(fi) = cur(&stack) {
                        fns[fi].panics.push(PanicSite {
                            what: format!(".{name}()"),
                            line,
                            indexing: false,
                        });
                    }
                }
                if PANIC_MACROS.contains(&name.as_str()) && punct(i + 1, '!') {
                    if let Some(fi) = cur(&stack) {
                        fns[fi].panics.push(PanicSite {
                            what: format!("{name}!"),
                            line,
                            indexing: false,
                        });
                    }
                }

                // Call sites ----------------------------------------------
                if punct(i + 1, '(')
                    && !NON_CALLEES.contains(&name.as_str())
                    && !(i > 0 && ident(i - 1) == Some("fn"))
                {
                    let method = i > 0 && punct(i - 1, '.');
                    let qualifier = if !method && i >= 3 && punct(i - 1, ':') && punct(i - 2, ':') {
                        ident(i - 3).map(|q| {
                            if q == "Self" {
                                stack
                                    .iter()
                                    .rev()
                                    .find_map(|f| f.owner.clone())
                                    .unwrap_or_else(|| q.to_string())
                            } else {
                                q.to_string()
                            }
                        })
                    } else {
                        None
                    };
                    let held = held_at(i);
                    if let Some(fi) = cur(&stack) {
                        fns[fi].calls.push(CallSite {
                            name: name.clone(),
                            qualifier,
                            method,
                            line,
                            held,
                        });
                    }
                }
            }
            _ => {}
        }
    }

    FileTable {
        file: file.to_string(),
        krate: krate.to_string(),
        fns,
        names,
    }
}

/// Token indices covered by `#[...]` attributes (nothing inside an
/// attribute is a call, a lock, or a panic site).
fn attr_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        let starts_attr = toks[i].kind == TokKind::Punct('#')
            && toks.get(i + 1).map(|t| &t.kind) == Some(&TokKind::Punct('['));
        if !starts_attr {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let end = (j + 1).min(toks.len());
        for m in &mut mask[i..end] {
            *m = true;
        }
        i = end;
    }
    mask
}

/// Find every `.lock()` / `.read()` / `.write()` (empty parens — the
/// `Mutex`/`RwLock` signatures) and compute how long each guard is held:
///
/// * statement starts with `let` / `match` / `if` / `while` / `for` — the
///   guard is bound (or borrowed by the expression) and held to the end of
///   the enclosing block;
/// * otherwise it is a temporary, dropped at the statement's `;`.
///
/// Both are over-approximations in the binding case (an explicit
/// `drop(guard)` is not modeled) and exact for temporaries.
fn collect_acquisitions(
    toks: &[Token],
    depths: &[u32],
    mask: &[bool],
    in_test: &dyn Fn(u32) -> bool,
) -> Vec<Acq> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if mask[i] || i < 2 {
            continue;
        }
        let TokKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        if !LOCK_METHODS.contains(&name.as_str())
            || toks[i - 1].kind != TokKind::Punct('.')
            || toks.get(i + 1).map(|t| &t.kind) != Some(&TokKind::Punct('('))
            || toks.get(i + 2).map(|t| &t.kind) != Some(&TokKind::Punct(')'))
            || in_test(toks[i].line)
        {
            continue;
        }
        let lock = receiver_name(toks, i - 2);
        // Statement head: the first token after the previous `;`/`{`/`}`.
        let mut head = i;
        while head > 0
            && !matches!(
                toks[head - 1].kind,
                TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}')
            )
        {
            head -= 1;
        }
        let binding = matches!(&toks[head].kind,
            TokKind::Ident(s) if BINDING_HEADS.contains(&s.as_str()));
        let stmt_depth = depths[head];
        let mut until = toks.len();
        for (k, t) in toks.iter().enumerate().skip(i + 1) {
            if depths[k] > stmt_depth {
                continue;
            }
            match t.kind {
                TokKind::Punct('}') => {
                    until = k;
                    break;
                }
                TokKind::Punct(';') if !binding => {
                    until = k;
                    break;
                }
                _ => {}
            }
        }
        out.push(Acq {
            name: lock,
            index: i,
            until,
        });
    }
    out
}

/// The identifier naming the receiver of `<recv>.lock()`: the last path
/// component, skipping index (`[…]`) and call (`(…)`) suffixes. Tuple
/// fields (`self.0.lock()`) become `_field`, anything else `_expr`.
fn receiver_name(toks: &[Token], mut k: usize) -> String {
    loop {
        match &toks[k].kind {
            TokKind::Punct(']') => match open_before(toks, k, '[', ']') {
                Some(o) if o > 0 => k = o - 1,
                _ => return "_expr".into(),
            },
            TokKind::Punct(')') => match open_before(toks, k, '(', ')') {
                Some(o) if o > 0 => k = o - 1,
                _ => return "_expr".into(),
            },
            TokKind::Ident(s) => return s.clone(),
            TokKind::Int => return "_field".into(),
            _ => return "_expr".into(),
        }
    }
}

/// Index of the `open` delimiter matching the `close` at `close_idx`,
/// scanning backward.
fn open_before(toks: &[Token], close_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = close_idx;
    loop {
        if toks[k].kind == TokKind::Punct(close) {
            depth += 1;
        } else if toks[k].kind == TokKind::Punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
}

/// Whether the `fn` at token `fn_idx` is unrestricted `pub`: walk back over
/// modifiers (`const unsafe async extern "C"`) to the visibility.
fn is_pub_fn(toks: &[Token], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokKind::Ident(s) if matches!(s.as_str(), "const" | "unsafe" | "async" | "extern") => {
                continue
            }
            TokKind::Str(_) => continue, // the ABI string of `extern "C"`
            TokKind::Punct(')') => {
                // `pub(crate) fn` / `pub(super) fn`: restricted, not surface.
                return false;
            }
            TokKind::Ident(s) => return s == "pub",
            _ => return false,
        }
    }
    false
}

/// The self-type of an `impl`/`trait` header starting at `start`.
///
/// For `impl`: the first path's last identifier after the final top-level
/// `for` (so `impl Capacity for i128` → `i128`, `impl<C> Network<C>` →
/// `Network`). For `trait`: the first identifier (bounds after `:` are not
/// the owner).
fn scan_owner(toks: &[Token], start: usize, is_trait: bool) -> Option<String> {
    let limit = (start + 64).min(toks.len());
    if is_trait {
        return toks[start + 1..limit].iter().find_map(|t| match &t.kind {
            TokKind::Ident(s) => Some(s.clone()),
            _ => None,
        });
    }
    let mut angle = 0i32;
    let mut seg_start = start + 1;
    let mut stop = limit;
    for (k, t) in toks.iter().enumerate().take(limit).skip(start + 1) {
        match &t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct('{') | TokKind::Punct(';') => {
                stop = k;
                break;
            }
            TokKind::Ident(s) if s == "for" && angle == 0 => seg_start = k + 1,
            TokKind::Ident(s) if s == "where" && angle == 0 => {
                stop = k;
                break;
            }
            _ => {}
        }
    }
    let mut angle = 0i32;
    let mut owner: Option<String> = None;
    for t in toks.iter().take(stop).skip(seg_start) {
        match &t.kind {
            TokKind::Punct('<') => {
                if owner.is_some() {
                    break;
                }
                angle += 1;
            }
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct('&') | TokKind::Punct('*') | TokKind::Punct(':') => {}
            TokKind::Lifetime => {}
            TokKind::Ident(s) if angle == 0 => {
                if s != "dyn" && s != "mut" {
                    // A path keeps overwriting: `a::b::C` ends at `C`.
                    owner = Some(s.clone());
                }
            }
            _ => {
                if owner.is_some() {
                    break;
                }
            }
        }
    }
    owner
}

// ---------------------------------------------------------------------------
// Linking and graph analyses
// ---------------------------------------------------------------------------

/// One function definition in the linked workspace view.
#[derive(Debug, Clone)]
pub struct Def {
    /// File path relative to the lint root.
    pub file: String,
    /// Crate name.
    pub krate: String,
    /// Function name.
    pub name: String,
    /// Owning `impl`/`trait` type.
    pub owner: Option<String>,
    /// 1-based definition line.
    pub line: u32,
    /// Unrestricted `pub`.
    pub is_pub: bool,
    /// Call sites.
    pub calls: Vec<CallSite>,
    /// Panic sites.
    pub panics: Vec<PanicSite>,
    /// Lock acquisitions.
    pub locks: Vec<LockSite>,
}

impl Def {
    /// `Owner::name` or bare `name`, for findings.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The linked workspace call graph.
#[derive(Debug, Default)]
pub struct Linked {
    /// All function definitions, in file order.
    pub defs: Vec<Def>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Per-definition transitive lock facts (see [`Linked::lock_facts`]).
#[derive(Debug, Clone, Default)]
pub struct LockFacts {
    /// Every lock name this function may acquire, directly or transitively.
    pub acquires: BTreeSet<String>,
    /// A flow-engine sink name reachable from this function, if any.
    pub sink: Option<String>,
}

/// Link per-file tables into one workspace view.
pub fn link(tables: Vec<FileTable>) -> Linked {
    let mut linked = Linked::default();
    for t in tables {
        for f in t.fns {
            linked
                .by_name
                .entry(f.name.clone())
                .or_default()
                .push(linked.defs.len());
            linked.defs.push(Def {
                file: t.file.clone(),
                krate: t.krate.clone(),
                name: f.name,
                owner: f.owner,
                line: f.line,
                is_pub: f.is_pub,
                calls: f.calls,
                panics: f.panics,
                locks: f.locks,
            });
        }
    }
    linked
}

impl Linked {
    /// Resolve a call site to candidate definitions (see the module docs
    /// for the over-approximation rules).
    pub fn resolve(&self, call: &CallSite, caller_krate: &str) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        if call.method {
            // `.name(...)`: any same-named method anywhere — conservative.
            return cands
                .iter()
                .copied()
                .filter(|&i| self.defs[i].owner.is_some())
                .collect();
        }
        if let Some(q) = &call.qualifier {
            // `Q::name(...)`: precise — owner type, crate, or module file.
            return cands
                .iter()
                .copied()
                .filter(|&i| {
                    let d = &self.defs[i];
                    d.owner.as_deref() == Some(q.as_str())
                        || d.krate == *q
                        || d.file.ends_with(&format!("/{q}.rs"))
                        || d.file.contains(&format!("/{q}/"))
                })
                .collect();
        }
        // Bare `name(...)`: prefer same-crate free functions; if the crate
        // has none, the name was imported — link to every definition.
        let same: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.defs[i].krate == caller_krate && self.defs[i].owner.is_none())
            .collect();
        if !same.is_empty() {
            return same;
        }
        cands.clone()
    }

    /// Breadth-first search from `start` for the shortest call chain
    /// reaching an unsanctioned panic site in *another* definition (direct
    /// sites are the lexical `panic` rule's job). `sanctioned(file, line)`
    /// reports whether an allow annotation already covers the site.
    pub fn panic_chain(
        &self,
        start: usize,
        include_indexing: bool,
        sanctioned: &dyn Fn(&str, u32) -> bool,
    ) -> Option<(Vec<usize>, PanicSite)> {
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        let mut queue = VecDeque::new();
        visited.insert(start);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            if u != start {
                let d = &self.defs[u];
                let hit = d
                    .panics
                    .iter()
                    .find(|p| (include_indexing || !p.indexing) && !sanctioned(&d.file, p.line));
                if let Some(p) = hit {
                    let mut path = vec![u];
                    let mut cur = u;
                    while cur != start {
                        let pr = prev[&cur];
                        path.push(pr);
                        cur = pr;
                    }
                    path.reverse();
                    return Some((path, p.clone()));
                }
            }
            for c in &self.defs[u].calls {
                for v in self.resolve(c, &self.defs[u].krate) {
                    if visited.insert(v) {
                        prev.insert(v, u);
                        queue.push_back(v);
                    }
                }
            }
        }
        None
    }

    /// Transitive lock facts per definition, by fixpoint over the call
    /// graph: which lock names each function may acquire, and whether a
    /// flow-engine sink (a call whose *name* is in `sinks`) is reachable.
    pub fn lock_facts(&self, sinks: &[String]) -> Vec<LockFacts> {
        let n = self.defs.len();
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut out: Vec<usize> = self.defs[i]
                    .calls
                    .iter()
                    .flat_map(|c| self.resolve(c, &self.defs[i].krate))
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        let mut facts: Vec<LockFacts> = self
            .defs
            .iter()
            .map(|d| LockFacts {
                acquires: d.locks.iter().map(|l| l.lock.clone()).collect(),
                sink: d
                    .calls
                    .iter()
                    .find(|c| sinks.iter().any(|s| s == &c.name))
                    .map(|c| c.name.clone()),
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                for &j in &adj[i] {
                    if i == j {
                        continue;
                    }
                    let (extra, sink) = {
                        let fj = &facts[j];
                        (
                            fj.acquires
                                .iter()
                                .filter(|l| !facts[i].acquires.contains(*l))
                                .cloned()
                                .collect::<Vec<_>>(),
                            fj.sink.clone(),
                        )
                    };
                    if !extra.is_empty() {
                        facts[i].acquires.extend(extra);
                        changed = true;
                    }
                    if facts[i].sink.is_none() && sink.is_some() {
                        facts[i].sink = sink;
                        changed = true;
                    }
                }
            }
            if !changed {
                return facts;
            }
        }
    }
}

/// Acquisition-order cycles in a lock digraph. `edges` maps
/// `(held, acquired)` to the earliest `(file, line)` witness. Returns one
/// entry per strongly-connected lock group (including self-loops): the
/// sorted lock names plus the group's internal edges with witnesses.
#[allow(clippy::type_complexity)]
pub fn lock_cycles(
    edges: &BTreeMap<(String, String), (String, u32)>,
) -> Vec<(Vec<String>, Vec<((String, String), (String, u32))>)> {
    // Transitive closure over the (tiny) lock-name digraph.
    let mut reach: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        reach.entry(a).or_default().insert(b);
        reach.entry(b).or_default();
    }
    loop {
        let mut changed = false;
        let nodes: Vec<&str> = reach.keys().copied().collect();
        for a in &nodes {
            let step: BTreeSet<&str> = reach[a]
                .iter()
                .flat_map(|b| reach[b].iter().copied())
                .collect();
            let before = reach[a].len();
            if let Some(s) = reach.get_mut(a) {
                s.extend(step);
            }
            if reach[a].len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Cyclic nodes reach themselves; group them by mutual reachability.
    let cyclic: Vec<&str> = reach
        .iter()
        .filter(|(a, set)| set.contains(**a))
        .map(|(a, _)| *a)
        .collect();
    let mut groups: Vec<Vec<String>> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &a in &cyclic {
        if seen.contains(a) {
            continue;
        }
        let group: Vec<&str> = cyclic
            .iter()
            .copied()
            .filter(|&b| reach[a].contains(b) && reach[b].contains(a))
            .collect();
        seen.extend(group.iter().copied());
        groups.push(group.into_iter().map(String::from).collect());
    }
    groups
        .into_iter()
        .map(|g| {
            let members: BTreeSet<&str> = g.iter().map(String::as_str).collect();
            let ws: Vec<_> = edges
                .iter()
                .filter(|((a, b), _)| members.contains(a.as_str()) && members.contains(b.as_str()))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            (g, ws)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_regions;

    fn table(file: &str, krate: &str, src: &str) -> FileTable {
        let lexed = lex(src);
        let depths = lexed.depths();
        let spans = test_regions(&lexed, &depths);
        extract(file, krate, &lexed, &depths, &spans, &[])
    }

    fn def<'a>(l: &'a Linked, name: &str) -> (usize, &'a Def) {
        l.defs
            .iter()
            .enumerate()
            .find(|(_, d)| d.name == name)
            .unwrap_or_else(|| panic!("no def {name}"))
    }

    #[test]
    fn method_calls_resolve_to_every_same_named_method() {
        // The deliberately ambiguous case: `.helper()` must link to BOTH
        // impls — over-approximate rather than guess a receiver type.
        let a = table(
            "crates/a/src/lib.rs",
            "a",
            "impl Pool { pub fn grab(&self) { self.helper(); } fn helper(&self) {} }",
        );
        let b = table(
            "crates/b/src/lib.rs",
            "b",
            "impl Other { fn helper(&self) {} }",
        );
        let l = link(vec![a, b]);
        let (_, grab) = def(&l, "grab");
        let call = &grab.calls[0];
        assert!(call.method);
        let resolved = l.resolve(call, "a");
        let owners: Vec<_> = resolved
            .iter()
            .map(|&i| l.defs[i].owner.clone().unwrap())
            .collect();
        assert!(owners.contains(&"Pool".to_string()), "{owners:?}");
        assert!(owners.contains(&"Other".to_string()), "{owners:?}");
    }

    #[test]
    fn qualified_external_paths_produce_no_edges() {
        // `Vec::new()` must NOT link to an unrelated workspace `new`.
        let a = table(
            "crates/a/src/lib.rs",
            "a",
            "impl Pool { pub fn new() -> Self { Pool } fn go(&self) { let v = Vec::new(); } }",
        );
        let l = link(vec![a]);
        let (_, go) = def(&l, "go");
        let call = go.calls.iter().find(|c| c.name == "new").unwrap();
        assert_eq!(call.qualifier.as_deref(), Some("Vec"));
        assert!(l.resolve(call, "a").is_empty());
    }

    #[test]
    fn bare_cross_crate_calls_over_approximate() {
        // `helper_x()` has no definition in crate b, so the resolver links
        // it to every same-named definition in the workspace.
        let a = table("crates/a/src/util.rs", "a", "pub fn helper_x() {}");
        let b = table(
            "crates/b/src/lib.rs",
            "b",
            "pub fn surface() { helper_x(); }",
        );
        let l = link(vec![a, b]);
        let (_, surface) = def(&l, "surface");
        let resolved = l.resolve(&surface.calls[0], "b");
        assert_eq!(resolved.len(), 1);
        assert_eq!(l.defs[resolved[0]].krate, "a");
    }

    #[test]
    fn scope_depth_lock_tracking() {
        let src = "\
impl P {
    fn bound(&self) {
        let g = self.m.lock();
        self.after_bound();
    }
    fn temp(&self) {
        self.m2.lock();
        self.after_temp();
    }
    fn inner_block(&self) {
        {
            let g = self.m3.lock();
            self.under();
        }
        self.after_block();
    }
    fn tuple_field(&self) {
        let g = self.0.lock();
        self.after_tuple();
    }
}
";
        let t = table("crates/a/src/lib.rs", "a", src);
        let l = link(vec![t]);
        let call = |holder: &str, callee: &str| {
            let (_, d) = def(&l, holder);
            d.calls
                .iter()
                .find(|c| c.name == callee)
                .unwrap_or_else(|| panic!("no call {callee} in {holder}"))
                .held
                .clone()
        };
        // A bound guard is held to the end of its block…
        assert_eq!(call("bound", "after_bound"), vec!["m".to_string()]);
        // …a temporary only to its own statement's `;`…
        assert_eq!(call("temp", "after_temp"), Vec::<String>::new());
        // …and an inner-block guard does not leak past the block.
        assert_eq!(call("inner_block", "under"), vec!["m3".to_string()]);
        assert_eq!(call("inner_block", "after_block"), Vec::<String>::new());
        // Tuple-field receivers collapse to a placeholder name.
        assert_eq!(
            call("tuple_field", "after_tuple"),
            vec!["_field".to_string()]
        );
    }

    #[test]
    fn panic_chain_crosses_files() {
        let a = table(
            "crates/a/src/lib.rs",
            "a",
            "pub fn surface() { mid(); }\nfn mid() { helper(); }\n",
        );
        let b = table(
            "crates/a/src/util.rs",
            "a",
            "pub fn helper() { let v: Option<u32> = None; v.unwrap(); }\n",
        );
        let l = link(vec![a, b]);
        let (i, _) = def(&l, "surface");
        let (path, site) = l
            .panic_chain(i, false, &|_, _| false)
            .expect("chain reaches the unwrap");
        let names: Vec<_> = path.iter().map(|&j| l.defs[j].name.clone()).collect();
        assert_eq!(names, vec!["surface", "mid", "helper"]);
        assert_eq!(site.what, ".unwrap()");
        // Direct sites in the start fn itself are the lexical rule's job.
        let (h, _) = def(&l, "helper");
        assert!(l.panic_chain(h, false, &|_, _| false).is_none());
        // Sanctioned sites (allow-annotated) do not poison callers.
        assert!(l.panic_chain(i, false, &|_, _| true).is_none());
    }

    #[test]
    fn indexing_sites_are_gated() {
        let a = table(
            "crates/a/src/lib.rs",
            "a",
            "pub fn surface(v: &[u32]) { pick(v); }\nfn pick(v: &[u32]) -> u32 { v[0] }\n",
        );
        let l = link(vec![a]);
        let (i, _) = def(&l, "surface");
        assert!(l.panic_chain(i, false, &|_, _| false).is_none());
        let (path, site) = l
            .panic_chain(i, true, &|_, _| false)
            .expect("indexing chain found when opted in");
        assert_eq!(path.len(), 2);
        assert!(site.indexing, "{site:?}");
    }

    #[test]
    fn lock_facts_propagate_and_cycles_are_found() {
        let src = "\
impl L {
    fn ab(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
    }
    fn ba(&self) {
        let h = self.b.lock();
        self.via();
    }
    fn via(&self) {
        let g = self.a.lock();
    }
}
";
        let t = table("crates/a/src/lib.rs", "a", src);
        let l = link(vec![t]);
        let facts = l.lock_facts(&[]);
        let (via, _) = def(&l, "via");
        let (ba, _) = def(&l, "ba");
        assert!(facts[via].acquires.contains("a"));
        assert!(facts[ba].acquires.contains("a"), "transitive via call");
        assert!(facts[ba].acquires.contains("b"));

        let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
        edges.insert(("a".into(), "b".into()), ("f.rs".into(), 3));
        edges.insert(("b".into(), "a".into()), ("f.rs".into(), 8));
        let cycles = lock_cycles(&edges);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].0, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(cycles[0].1.len(), 2);
        // A self-edge is a (re-entrancy) cycle on its own.
        let mut selfed: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
        selfed.insert(("free".into(), "free".into()), ("g.rs".into(), 5));
        assert_eq!(lock_cycles(&selfed).len(), 1);
        // An acyclic order is not.
        let mut acyclic: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
        acyclic.insert(("a".into(), "b".into()), ("f.rs".into(), 3));
        acyclic.insert(("b".into(), "c".into()), ("f.rs".into(), 9));
        assert!(lock_cycles(&acyclic).is_empty());
    }

    #[test]
    fn sink_reachability_via_names() {
        let src = "\
impl S {
    fn drain(&self) {
        let g = self.shards.lock();
        self.step(g);
    }
    fn step(&self, g: u32) {
        self.session_apply(g);
    }
    fn session_apply(&self, g: u32) {
        apply(g);
    }
}
";
        let t = table("crates/a/src/lib.rs", "a", src);
        let l = link(vec![t]);
        let facts = l.lock_facts(&["apply".to_string()]);
        let (step, _) = def(&l, "step");
        assert_eq!(facts[step].sink.as_deref(), Some("apply"));
        let (_, d) = def(&l, "drain");
        let call = d.calls.iter().find(|c| c.name == "step").unwrap();
        assert_eq!(call.held, vec!["shards".to_string()]);
    }

    #[test]
    fn impl_owner_and_pub_detection() {
        let src = "\
impl<C: Capacity> Network<C> {
    pub fn run(&self) {}
    pub(crate) fn internal(&self) {}
}
impl Capacity for i128 {
    fn hook(&self) {}
}
trait Capacity: Clone {
    fn defaulted(&self) { helper(); }
}
pub fn free() {}
";
        let t = table("crates/flow/src/kernel.rs", "flow", src);
        let by: BTreeMap<&str, &FnDef> = t.fns.iter().map(|f| (f.name.as_str(), f)).collect();
        assert_eq!(by["run"].owner.as_deref(), Some("Network"));
        assert!(by["run"].is_pub);
        assert!(!by["internal"].is_pub, "pub(crate) is not surface");
        assert_eq!(by["hook"].owner.as_deref(), Some("i128"));
        assert_eq!(by["defaulted"].owner.as_deref(), Some("Capacity"));
        assert!(by["free"].is_pub);
        assert!(by["free"].owner.is_none());
    }

    #[test]
    fn trace_names_are_collected() {
        let src = "\
pub fn go() {
    let mut sp = prs_trace::span(\"bd\", \"round\");
    prs_trace::instant(\"bd\", \"checkpoint\", || vec![]);
    let c = Counter::new(\"bd.session_hits\");
}
const SPAN_BFS: &'static str = \"exact_bfs_phase\";
macro_rules! rows { () => {} }
fn table() {
    counters! { HITS(\"bd.fast_path_hits\") => hits, record_hit; }
}
#[cfg(test)]
mod tests {
    fn probe() { let c = Counter::new(\"test.probe\"); }
}
";
        let lexed = lex(src);
        let depths = lexed.depths();
        let spans = test_regions(&lexed, &depths);
        let t = extract(
            "crates/trace/src/lib.rs",
            "trace",
            &lexed,
            &depths,
            &spans,
            &[("SPAN_".to_string(), "flow".to_string())],
        );
        let entries: Vec<&str> = t.names.iter().map(|n| n.entry.as_str()).collect();
        assert_eq!(
            entries,
            vec![
                "span bd.round",
                "span bd.checkpoint",
                "counter bd.session_hits",
                "span flow.exact_bfs_phase",
                "counter bd.fast_path_hits",
            ]
        );
    }
}
