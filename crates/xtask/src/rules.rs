//! The `prs-lint` rule suite.
//!
//! Each rule is a pass over the token stream of the files in its configured
//! path set, reported with file and line. The paper-specific rationale for
//! every rule lives in `docs/ANALYSIS.md`; in one line each:
//!
//! * `float` — the incentive-ratio proofs need the decomposition to be
//!   *exact*; no `f64`/`f32` types or float literals may appear in the
//!   exact kernels. The f64 capacity backend may only *propose*, never
//!   decide, and is the single `float_boundary_exempt` module where floats
//!   (and casts into them) are permitted.
//! * `cast` — `as` numeric casts truncate silently; exact kernels must use
//!   `From`/`TryFrom` or carry a range argument in an allow annotation.
//! * `panic` — library code must push failures into typed errors
//!   (`prs_core::Error`), not abort: no `unwrap`/`expect`/`panic!`-family
//!   macros outside tests.
//! * `hash-iter` — sweep and bench paths promise deterministic, in-order
//!   output; `HashMap`/`HashSet` iteration order is arbitrary, so those
//!   paths must use `BTreeMap`/`BTreeSet` or sort explicitly.
//! * `api-doc` — items declared on the umbrella surface must be documented
//!   (`pub use` re-exports inherit docs and are exempt).
//! * `non-exhaustive` — `#[non_exhaustive]` config structs must not *gain*
//!   public fields; new knobs go behind `with_*` builders. The known field
//!   sets are snapshotted in the lint config.
//! * `proptest-regressions` — every proptest suite must have a checked-in
//!   sibling `.proptest-regressions` file with no duplicate seeds, and the
//!   files must not be gitignored (seeds stay stable across CI jobs).
//! * `annotation` — a malformed or stale `prs-lint:` directive is itself a
//!   violation, so the escape hatch cannot rot.
//!
//! On top of the per-file passes sit three *workspace* rules that walk the
//! approximate call graph built by [`crate::graph`] (over-approximate by
//! design — see the module docs there for the soundness stance):
//!
//! * `panic-reach` — the lexical `panic` rule sees only direct sites; this
//!   rule flags any library-surface `pub fn` from which an unannotated
//!   panic-family site is *reachable*, printing the offending call chain.
//! * `lock-order` — `Mutex`/`RwLock` acquisitions are extracted with
//!   scope-depth tracking, held-lock sets are propagated through the call
//!   graph, and the rule reports acquisition-order cycles plus any
//!   flow-engine invocation (`max_flow`/`decompose`/`apply`) reached while
//!   a pool lock is held — the deadlock classes `prs serve` batching hits.
//! * `trace-registry` — every static span/counter name is collected and
//!   diffed against the checked-in `docs/trace-registry.txt`, so
//!   trace-name drift fails CI without running instrumented binaries.

use crate::allow::{collect_allows, Allow};
use crate::graph;
use crate::lexer::{lex, Lexed, TokKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// File, relative to the lint root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// One violation that an allow annotation silenced (counted, not hidden).
#[derive(Debug, Clone)]
pub struct AllowedSite {
    /// Rule that would have fired.
    pub rule: String,
    /// File, relative to the lint root.
    pub file: String,
    /// 1-based line of the silenced site.
    pub line: u32,
    /// The annotation's reason.
    pub reason: String,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Escape hatches exercised, sorted by (file, line).
    pub allowed: Vec<AllowedSite>,
}

impl Report {
    /// Allowed-site count per rule (for the summary line).
    pub fn allowed_by_rule(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for a in &self.allowed {
            *out.entry(a.rule.clone()).or_insert(0) += 1;
        }
        out
    }

    /// Machine-readable report for `cargo xtask lint --json`: fixed key
    /// order, findings and allowed sites in their sorted order, so CI
    /// artifacts diff cleanly across runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"allowed\": [");
        for (i, a) in self.allowed.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
                json_str(&a.file),
                a.line,
                json_str(&a.rule),
                json_str(&a.reason)
            ));
        }
        if !self.allowed.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"summary\": {{\"findings\": {}, \"allowed\": {}}}\n}}\n",
            self.findings.len(),
            self.allowed.len()
        ));
        out
    }
}

/// Minimal JSON string encoding (the report carries no non-string values
/// beyond line numbers, so this is the whole serializer).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Where each rule applies. Paths are `/`-separated and relative to `root`;
/// an entry matches itself and everything beneath it.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root all paths are relative to.
    pub root: PathBuf,
    /// Directories to walk for `.rs` files and proptest suites.
    pub scan_roots: Vec<String>,
    /// Path prefixes never linted (vendored shims, fixtures, build output).
    pub skip: Vec<String>,
    /// Exact kernels: no floats.
    pub float_paths: Vec<String>,
    /// No `as` numeric casts (superset of the exact kernels).
    pub cast_paths: Vec<String>,
    /// The designated float-backend modules: carved out of *both* the
    /// `float` and `cast` rules even when a parent directory is covered.
    /// This is the boundary that makes "floats may propose, never decide"
    /// checkable — exactly one module in the flow crate may mention `f64`.
    pub float_boundary_exempt: Vec<String>,
    /// Library code: no panicking calls outside tests.
    pub panic_paths: Vec<String>,
    /// Deterministic sweep/bench paths: no hash collections.
    pub hash_paths: Vec<String>,
    /// Files whose declared `pub` items must carry doc comments.
    pub api_doc_files: Vec<String>,
    /// Snapshot of permitted public fields per `#[non_exhaustive]` struct.
    pub non_exhaustive_fields: BTreeMap<String, Vec<String>>,
    /// Concurrency-bearing modules the `lock-order` rule covers. The cli
    /// is deliberately out: its only "lock" is the stdout handle.
    pub lock_paths: Vec<String>,
    /// Call names that mean "the flow engine is running"; reaching one
    /// while a pool lock is held is a `lock-order` finding.
    pub flow_sinks: Vec<String>,
    /// Opt-in: count slice/array indexing as a panic source for
    /// `panic-reach`. Off in the workspace config — indexing is pervasive
    /// and the lexical rules never covered it; the gate exists so the
    /// tightening can be proven (selftest) before it is turned on.
    pub panic_reach_index_sites: bool,
    /// The checked-in trace-name registry the `trace-registry` rule diffs
    /// against, relative to `root`.
    pub trace_registry: String,
    /// `const` name prefixes whose string initializers are span names,
    /// with the layer they record under (the flow crate routes its span
    /// names through `SPAN_*` consts on `Capacity` impls).
    pub span_const_layers: Vec<(String, String)>,
}

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl LintConfig {
    /// The real workspace rule map (see `docs/ANALYSIS.md` for rationale).
    pub fn workspace(root: PathBuf) -> Self {
        let exact_kernels = vec![
            // All big-integer / rational arithmetic.
            "crates/numeric/src".to_string(),
            // The whole flow crate: the generic Dinic kernel, the Capacity
            // trait, and the exact backends. The one sanctioned float
            // module is carved back out via `float_boundary_exempt`.
            "crates/flow/src".to_string(),
            // The decomposition driver, the session replay/certify paths,
            // and the delta-mutation vocabulary (cells evaluate exact
            // Möbius curves; a float anywhere here could skew an α̂).
            "crates/bd/src/decomposition.rs".to_string(),
            "crates/bd/src/session.rs".to_string(),
            "crates/bd/src/delta.rs".to_string(),
            // The trace recorder: instrumented from inside the exact kernels,
            // so its own arithmetic (timing, percentiles, JSON export) must
            // stay integer-only too.
            "crates/trace/src".to_string(),
        ];
        let mut cast_paths = exact_kernels.clone();
        // The cast rule additionally covers the bd glue: a truncating cast
        // there can bias proposals systematically, and satellite
        // instrumentation must state its ranges.
        cast_paths.push("crates/bd/src".to_string());
        LintConfig {
            root,
            scan_roots: vec!["crates".into(), "src".into(), "tests".into()],
            skip: vec![
                "crates/xtask".into(), // the linter itself (dev tool, not library surface)
                "crates/bench".into(), // harness binaries; prints and unwraps are its job
            ],
            float_paths: exact_kernels,
            cast_paths,
            // The f64 Capacity backend is the single module allowed to
            // mention floats or cast into them; everything else in the flow
            // crate is generic over the Capacity trait and stays exact.
            // The checked-i128 fast tier (`network_i128.rs`) is deliberately
            // NOT exempted: it is an exact backend and every rule covers it.
            float_boundary_exempt: vec!["crates/flow/src/network_f64.rs".to_string()],
            panic_paths: vec![
                "crates/numeric/src".into(),
                "crates/graph/src".into(),
                "crates/flow/src".into(),
                "crates/bd/src".into(),
                "crates/core/src".into(),
                "crates/cli/src".into(),
                "crates/deviation/src".into(),
                "crates/sybil/src".into(),
                "crates/dynamics/src".into(),
                "crates/p2psim/src".into(),
                "crates/eg/src".into(),
                // The recorder runs inside every layer above; a panic here
                // takes the whole solver down with it.
                "crates/trace/src".into(),
            ],
            hash_paths: vec![
                "crates/deviation/src".into(),
                "crates/bd/src".into(),
                "crates/sybil/src".into(),
                "crates/dynamics/src/parallel.rs".into(),
                "crates/p2psim/src/parallel.rs".into(),
                // The SoA core and membership layer: hashing anywhere in
                // slot bookkeeping or rewiring would make round order (and
                // hence the bit-identical trajectories) nondeterministic.
                "crates/p2psim/src/soa.rs".into(),
                "crates/p2psim/src/membership.rs".into(),
                "crates/bench".into(),
                // Exporters group spans; hash iteration order would make the
                // summary / JSON output nondeterministic run to run.
                "crates/trace/src".into(),
            ],
            api_doc_files: vec!["src/lib.rs".into()],
            non_exhaustive_fields: BTreeMap::from([
                (
                    "AttackConfig".to_string(),
                    [
                        "grid",
                        "zoom_levels",
                        "keep",
                        "warm_start",
                        "cache_capacity",
                    ]
                    .map(String::from)
                    .to_vec(),
                ),
                (
                    "GeneralAttackConfig".to_string(),
                    ["grid", "max_copies", "warm_start", "cache_capacity"]
                        .map(String::from)
                        .to_vec(),
                ),
                (
                    "SweepConfig".to_string(),
                    ["grid", "refine_bits", "warm_start", "cache_capacity"]
                        .map(String::from)
                        .to_vec(),
                ),
                (
                    "SessionConfig".to_string(),
                    ["warm_start", "cache_capacity"].map(String::from).to_vec(),
                ),
                (
                    "TraceConfig".to_string(),
                    ["enabled", "max_events_per_thread"]
                        .map(String::from)
                        .to_vec(),
                ),
                (
                    "MetricsConfig".to_string(),
                    ["enabled", "slo", "flight"].map(String::from).to_vec(),
                ),
                (
                    "FlightConfig".to_string(),
                    ["capacity", "dump_dir", "max_dumps"]
                        .map(String::from)
                        .to_vec(),
                ),
            ]),
            lock_paths: vec![
                "crates/bd/src".into(),
                "crates/dynamics/src".into(),
                "crates/p2psim/src".into(),
                "crates/sybil/src".into(),
                "crates/trace/src".into(),
                "crates/flow/src".into(),
                "crates/deviation/src".into(),
            ],
            flow_sinks: ["max_flow", "decompose", "apply"]
                .map(String::from)
                .to_vec(),
            panic_reach_index_sites: false,
            trace_registry: "docs/trace-registry.txt".into(),
            span_const_layers: vec![
                ("SPAN_".to_string(), "flow".to_string()),
                // `MSPAN_*` consts in the metrics module name spans the
                // recorder opens about itself (e.g. the flight-dump span).
                ("MSPAN_".to_string(), "metrics".to_string()),
                // `PSPAN_*` consts in the SoA swarm engine and the
                // membership layer (round, checkpoint, membership spans).
                ("PSPAN_".to_string(), "p2psim".to_string()),
            ],
        }
    }

    fn matches(&self, set: &[String], rel: &str) -> bool {
        set.iter()
            .any(|p| rel == p || rel.starts_with(&format!("{p}/")))
    }

    fn skipped(&self, rel: &str) -> bool {
        self.matches(&self.skip, rel)
    }
}

/// One lexed file plus the state every rule pass needs: allow annotations,
/// test regions, crate attribution. Built once per file and shared by the
/// per-file and workspace passes so allow bookkeeping stays in one place.
struct FileCtx {
    rel: String,
    krate: String,
    in_test_dir: bool,
    lexed: Lexed,
    depths: Vec<u32>,
    allows: Vec<Allow>,
    test_spans: Vec<(u32, u32)>,
}

impl FileCtx {
    fn new(rel: String, src: &str, report: &mut Report) -> FileCtx {
        // Test-only code is exempt from the code rules; the regressions
        // rule handles tests/ directories separately.
        let in_test_dir = rel.split('/').any(|c| c == "tests" || c == "benches");
        let lexed = lex(src);
        let depths = lexed.depths();
        let (allows, bad) = collect_allows(&lexed);
        for b in bad {
            report.findings.push(Finding {
                rule: "annotation",
                file: rel.clone(),
                line: b.line,
                message: b.message,
            });
        }
        let test_spans = test_regions(&lexed, &depths);
        FileCtx {
            krate: krate_of(&rel),
            rel,
            in_test_dir,
            lexed,
            depths,
            allows,
            test_spans,
        }
    }

    fn in_tests(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(s, e)| line >= s && line <= e)
    }

    /// Route a violation through the test exemption and allow machinery.
    fn emit(&self, report: &mut Report, rule: &'static str, line: u32, message: String) {
        if self.in_test_dir || self.in_tests(line) {
            return;
        }
        if let Some(a) = self.allows.iter().find(|a| {
            a.rules.iter().any(|r| r == rule) && line >= a.start_line && line <= a.end_line
        }) {
            a.used.set(true);
            report.allowed.push(AllowedSite {
                rule: rule.to_string(),
                file: self.rel.clone(),
                line,
                reason: a.reason.clone(),
            });
            return;
        }
        report.findings.push(Finding {
            rule,
            file: self.rel.clone(),
            line,
            message,
        });
    }

    /// Whether an allow for any of `rules` covers `line`, marking it used.
    /// This is coverage *without* an emitted finding: the reachability
    /// rules sanction panic **sites** this way, while their finding (if
    /// any) lands at the reaching function's definition line.
    fn sanctions(&self, rules: &[&str], line: u32) -> bool {
        if self.in_test_dir || self.in_tests(line) {
            return true;
        }
        match self.allows.iter().find(|a| {
            a.rules.iter().any(|r| rules.contains(&r.as_str()))
                && line >= a.start_line
                && line <= a.end_line
        }) {
            Some(a) => {
                a.used.set(true);
                true
            }
            None => false,
        }
    }
}

/// Run every rule over the configured tree: lex every file once, run the
/// per-file passes, then the workspace (call-graph) passes, and only then
/// report stale allows — a workspace rule is as entitled to use an allow
/// annotation as a lexical one.
pub fn run(cfg: &LintConfig) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut rs_files = Vec::new();
    for scan in &cfg.scan_roots {
        walk(&cfg.root.join(scan), &mut rs_files)?;
    }
    rs_files.sort();

    let mut files = Vec::new();
    for path in &rs_files {
        let rel = relative(&cfg.root, path);
        if cfg.skipped(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        files.push(FileCtx::new(rel, &src, &mut report));
    }

    for fc in &files {
        lexical_rules(cfg, fc, &mut report);
    }
    workspace_rules(cfg, &files, &mut report);
    proptest_regressions_rule(cfg, &rs_files, &mut report);

    // Stale escape hatches are violations too — judged only after every
    // pass (per-file and workspace) has had its chance to use them.
    for fc in &files {
        for a in fc.allows.iter().filter(|a| !a.used.get()) {
            report.findings.push(Finding {
                rule: "annotation",
                file: fc.rel.clone(),
                line: a.comment_line,
                message: format!(
                    "stale allow({}) — it silences nothing; remove it",
                    a.rules.join(", ")
                ),
            });
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .allowed
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Crate attribution from the path: `crates/<name>/…` → `<name>`, anything
/// else (the umbrella `src/`, `tests/`) → `root`. New crates need no
/// registration here, but they DO need adding to the rule path sets in
/// [`LintConfig::workspace`] to be covered.
fn krate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(k) = parts.next() {
            return k.to_string();
        }
    }
    "root".to_string()
}

/// The per-file (lexical) passes.
fn lexical_rules(cfg: &LintConfig, fc: &FileCtx, report: &mut Report) {
    let mut emit =
        |rule: &'static str, line: u32, message: String| fc.emit(report, rule, line, message);

    let boundary_exempt = cfg.matches(&cfg.float_boundary_exempt, &fc.rel);
    if !boundary_exempt && cfg.matches(&cfg.float_paths, &fc.rel) {
        float_rule(&fc.lexed, &mut emit);
    }
    if !boundary_exempt && cfg.matches(&cfg.cast_paths, &fc.rel) {
        cast_rule(&fc.lexed, &mut emit);
    }
    if cfg.matches(&cfg.panic_paths, &fc.rel) {
        panic_rule(&fc.lexed, &mut emit);
    }
    if cfg.matches(&cfg.hash_paths, &fc.rel) {
        hash_rule(&fc.lexed, &mut emit);
    }
    if cfg.api_doc_files.iter().any(|f| f == &fc.rel) {
        api_doc_rule(&fc.lexed, &fc.depths, &mut emit);
    }
    non_exhaustive_rule(cfg, &fc.lexed, &fc.depths, &mut emit);
}

/// The workspace (call-graph) passes: extract item tables for every
/// non-test file, link them, then run `panic-reach`, `lock-order`, and
/// `trace-registry`.
fn workspace_rules(cfg: &LintConfig, files: &[FileCtx], report: &mut Report) {
    let mut tables = Vec::new();
    for fc in files {
        if fc.in_test_dir {
            continue;
        }
        tables.push(graph::extract(
            &fc.rel,
            &fc.krate,
            &fc.lexed,
            &fc.depths,
            &fc.test_spans,
            &cfg.span_const_layers,
        ));
    }
    let names: Vec<(String, Vec<graph::TraceName>)> = tables
        .iter()
        .map(|t| (t.file.clone(), t.names.clone()))
        .collect();
    let linked = graph::link(tables);
    let by_rel: BTreeMap<&str, &FileCtx> = files.iter().map(|f| (f.rel.as_str(), f)).collect();

    panic_reach_rule(cfg, &linked, &by_rel, report);
    lock_order_rule(cfg, &linked, &by_rel, report);
    trace_registry_rule(cfg, &names, &by_rel, report);
}

/// `panic-reach`: every library-surface `pub fn` in the panic path set must
/// not reach a panic-family site in another function. Direct sites are the
/// lexical `panic` rule's job; sites sanctioned by an allow for `panic` or
/// `panic-reach` do not poison callers.
fn panic_reach_rule(
    cfg: &LintConfig,
    linked: &graph::Linked,
    by_rel: &BTreeMap<&str, &FileCtx>,
    report: &mut Report,
) {
    let sanctioned = |file: &str, line: u32| -> bool {
        by_rel
            .get(file)
            .is_some_and(|fc| fc.sanctions(&["panic", "panic-reach"], line))
    };
    for (i, d) in linked.defs.iter().enumerate() {
        if !d.is_pub || !cfg.matches(&cfg.panic_paths, &d.file) {
            continue;
        }
        let Some(fc) = by_rel.get(d.file.as_str()) else {
            continue;
        };
        if let Some((path, site)) = linked.panic_chain(i, cfg.panic_reach_index_sites, &sanctioned)
        {
            let chain = path
                .iter()
                .map(|&j| linked.defs[j].display())
                .collect::<Vec<_>>()
                .join(" → ");
            let last = *path.last().expect("chain is nonempty");
            fc.emit(
                report,
                "panic-reach",
                d.line,
                format!(
                    "`{}` can reach a panic through the call graph: {chain} — {} at {}:{}",
                    d.display(),
                    site.what,
                    linked.defs[last].file,
                    site.line
                ),
            );
        }
    }
}

/// `lock-order`: flow-engine sinks reached while a lock is held, and
/// acquisition-order cycles over the lock digraph (edges `held → acquired`
/// from both direct nesting and call-mediated acquisition).
fn lock_order_rule(
    cfg: &LintConfig,
    linked: &graph::Linked,
    by_rel: &BTreeMap<&str, &FileCtx>,
    report: &mut Report,
) {
    let facts = linked.lock_facts(&cfg.flow_sinks);
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    let add_edge = |edges: &mut BTreeMap<(String, String), (String, u32)>,
                    held: &str,
                    acq: &str,
                    file: &str,
                    line: u32| {
        let key = (held.to_string(), acq.to_string());
        let witness = (file.to_string(), line);
        match edges.get(&key) {
            Some(old) if *old <= witness => {}
            _ => {
                edges.insert(key, witness);
            }
        }
    };

    for d in &linked.defs {
        if !cfg.matches(&cfg.lock_paths, &d.file) {
            continue;
        }
        let Some(fc) = by_rel.get(d.file.as_str()) else {
            continue;
        };
        for l in &d.locks {
            for h in &l.held {
                add_edge(&mut edges, h, &l.lock, &d.file, l.line);
            }
        }
        for c in &d.calls {
            if c.held.is_empty() {
                continue;
            }
            let resolved = linked.resolve(c, &d.krate);
            if cfg.flow_sinks.iter().any(|s| s == &c.name) {
                fc.emit(
                    report,
                    "lock-order",
                    c.line,
                    format!(
                        "flow-engine `{}` invoked while holding lock(s) {{{}}} — release the \
                         pool lock before engine work",
                        c.name,
                        c.held.join(", ")
                    ),
                );
            } else if let Some(sink) = resolved.iter().find_map(|&j| facts[j].sink.clone()) {
                fc.emit(
                    report,
                    "lock-order",
                    c.line,
                    format!(
                        "call to `{}` reaches flow-engine `{sink}` while holding lock(s) \
                         {{{}}} — release the pool lock before engine work",
                        c.name,
                        c.held.join(", ")
                    ),
                );
            }
            for &j in &resolved {
                for l in &facts[j].acquires {
                    for h in &c.held {
                        add_edge(&mut edges, h, l, &d.file, c.line);
                    }
                }
            }
        }
    }

    for (locks, witnesses) in graph::lock_cycles(&edges) {
        let Some((_, (file, line))) = witnesses.iter().min_by_key(|(_, w)| w.clone()).cloned()
        else {
            continue;
        };
        let detail = witnesses
            .iter()
            .map(|((a, b), (f, l))| format!("{a}→{b} at {f}:{l}"))
            .collect::<Vec<_>>()
            .join(", ");
        let message = format!(
            "lock acquisition-order cycle among {{{}}}: {} — pick one global order",
            locks.join(", "),
            detail
        );
        match by_rel.get(file.as_str()) {
            Some(fc) => fc.emit(report, "lock-order", line, message),
            None => report.findings.push(Finding {
                rule: "lock-order",
                file,
                line,
                message,
            }),
        }
    }
}

/// `trace-registry`: the statically collected span/counter names and the
/// checked-in registry must agree, and the registry must be sorted and
/// duplicate-free (so CI artifact diffs are stable).
fn trace_registry_rule(
    cfg: &LintConfig,
    names: &[(String, Vec<graph::TraceName>)],
    by_rel: &BTreeMap<&str, &FileCtx>,
    report: &mut Report,
) {
    // First site wins per entry; `names` arrives in sorted file order.
    let mut sites: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
    for (file, ns) in names {
        for n in ns {
            sites
                .entry(n.entry.as_str())
                .or_insert((file.as_str(), n.line));
        }
    }

    let reg_rel = cfg.trace_registry.clone();
    let content = match std::fs::read_to_string(cfg.root.join(&cfg.trace_registry)) {
        Ok(c) => c,
        Err(_) => {
            report.findings.push(Finding {
                rule: "trace-registry",
                file: reg_rel,
                line: 1,
                message: format!(
                    "trace registry `{}` is missing — run `cargo xtask registry --write`",
                    cfg.trace_registry
                ),
            });
            return;
        }
    };

    let mut registered: BTreeMap<String, u32> = BTreeMap::new();
    let mut prev: Option<(String, u32)> = None;
    for (idx, raw) in content.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let well_formed = l
            .strip_prefix("span ")
            .or_else(|| l.strip_prefix("counter "))
            .map(|r| r.contains('.'))
            .unwrap_or(false);
        if !well_formed {
            report.findings.push(Finding {
                rule: "trace-registry",
                file: reg_rel.clone(),
                line: line_no,
                message: format!(
                    "malformed registry entry `{l}` — expected `span <layer>.<name>` or \
                     `counter <dotted.name>`"
                ),
            });
            continue;
        }
        if let Some(first) = registered.get(l) {
            report.findings.push(Finding {
                rule: "trace-registry",
                file: reg_rel.clone(),
                line: line_no,
                message: format!("duplicate registry entry `{l}` (first at line {first})"),
            });
            continue;
        }
        if let Some((p, pl)) = &prev {
            if l < p.as_str() {
                report.findings.push(Finding {
                    rule: "trace-registry",
                    file: reg_rel.clone(),
                    line: line_no,
                    message: format!(
                        "registry out of order: `{l}` sorts before `{p}` (line {pl}) — keep \
                         the file sorted so CI diffs are stable"
                    ),
                });
            }
        }
        prev = Some((l.to_string(), line_no));
        registered.insert(l.to_string(), line_no);
    }

    for (entry, line_no) in &registered {
        if !sites.contains_key(entry.as_str()) {
            report.findings.push(Finding {
                rule: "trace-registry",
                file: reg_rel.clone(),
                line: *line_no,
                message: format!(
                    "stale registry entry `{entry}` — no span/counter site emits it; run \
                     `cargo xtask registry --write`"
                ),
            });
        }
    }
    for (entry, (file, line)) in &sites {
        if registered.contains_key(*entry) {
            continue;
        }
        if let Some(fc) = by_rel.get(*file) {
            fc.emit(
                report,
                "trace-registry",
                *line,
                format!(
                    "`{entry}` is not in `{}` — add it (or run `cargo xtask registry --write`)",
                    cfg.trace_registry
                ),
            );
        }
    }
}

/// The canonical trace-name registry content for the configured tree:
/// every static span/counter site, one `span <layer>.<name>` or
/// `counter <dotted.name>` line, sorted and deduplicated. `cargo xtask
/// registry --write` regenerates the checked-in file from this.
pub fn registry_content(cfg: &LintConfig) -> std::io::Result<String> {
    let mut rs_files = Vec::new();
    for scan in &cfg.scan_roots {
        walk(&cfg.root.join(scan), &mut rs_files)?;
    }
    rs_files.sort();
    let mut entries = std::collections::BTreeSet::new();
    for path in &rs_files {
        let rel = relative(&cfg.root, path);
        if cfg.skipped(&rel) || rel.split('/').any(|c| c == "tests" || c == "benches") {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        let lexed = lex(&src);
        let depths = lexed.depths();
        let spans = test_regions(&lexed, &depths);
        let table = graph::extract(
            &rel,
            &krate_of(&rel),
            &lexed,
            &depths,
            &spans,
            &cfg.span_const_layers,
        );
        entries.extend(table.names.into_iter().map(|n| n.entry));
    }
    let mut out = String::from(
        "# Trace-name registry — every static span/counter name in the tree.\n\
         # Regenerate with `cargo xtask registry --write`; the `trace-registry`\n\
         # lint diffs the instrumented tree against this file (sorted, one\n\
         # `span <layer>.<name>` or `counter <dotted.name>` per line).\n",
    );
    for e in entries {
        out.push_str(&e);
        out.push('\n');
    }
    Ok(out)
}

/// `f64`/`f32` tokens and float literals.
fn float_rule(lexed: &Lexed, emit: &mut impl FnMut(&'static str, u32, String)) {
    for t in &lexed.tokens {
        match &t.kind {
            TokKind::Ident(s) if s == "f64" || s == "f32" => emit(
                "float",
                t.line,
                format!("`{s}` in an exact kernel — floats may propose, never decide"),
            ),
            TokKind::Float => emit(
                "float",
                t.line,
                "float literal in an exact kernel".to_string(),
            ),
            _ => {}
        }
    }
}

/// `as <numeric type>` casts.
fn cast_rule(lexed: &Lexed, emit: &mut impl FnMut(&'static str, u32, String)) {
    for w in lexed.tokens.windows(2) {
        if let (TokKind::Ident(a), TokKind::Ident(ty)) = (&w[0].kind, &w[1].kind) {
            if a == "as" && NUMERIC_TYPES.contains(&ty.as_str()) {
                emit(
                    "cast",
                    w[0].line,
                    format!("`as {ty}` cast — use From/TryFrom or state the range in an allow"),
                );
            }
        }
    }
}

/// `.unwrap()` / `.expect(` and panic-family macros.
fn panic_rule(lexed: &Lexed, emit: &mut impl FnMut(&'static str, u32, String)) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if let TokKind::Ident(name) = &toks[i].kind {
            if PANIC_METHODS.contains(&name.as_str())
                && i > 0
                && toks[i - 1].kind == TokKind::Punct('.')
                && toks.get(i + 1).map(|t| t.kind == TokKind::Punct('(')) == Some(true)
            {
                emit(
                    "panic",
                    toks[i].line,
                    format!("`.{name}()` in library code — return a typed error instead"),
                );
            }
            if PANIC_MACROS.contains(&name.as_str())
                && toks.get(i + 1).map(|t| t.kind == TokKind::Punct('!')) == Some(true)
            {
                emit(
                    "panic",
                    toks[i].line,
                    format!("`{name}!` in library code — return a typed error instead"),
                );
            }
        }
    }
}

/// `HashMap` / `HashSet` in deterministic paths.
fn hash_rule(lexed: &Lexed, emit: &mut impl FnMut(&'static str, u32, String)) {
    for t in &lexed.tokens {
        if let TokKind::Ident(s) = &t.kind {
            if s == "HashMap" || s == "HashSet" {
                emit(
                    "hash-iter",
                    t.line,
                    format!("`{s}` in a deterministic path — use BTree collections or sort"),
                );
            }
        }
    }
}

/// Declared `pub` items at file depth 0 need a doc comment (`pub use` and
/// `pub(crate)` are exempt).
fn api_doc_rule(lexed: &Lexed, depths: &[u32], emit: &mut impl FnMut(&'static str, u32, String)) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if depths[i] != 0 || toks[i].kind != TokKind::Ident("pub".to_string()) {
            continue;
        }
        match toks.get(i + 1).map(|t| &t.kind) {
            Some(TokKind::Ident(k)) if k == "use" => continue,
            Some(TokKind::Punct('(')) => continue, // pub(crate): not public API
            _ => {}
        }
        // Walk back over the item's attributes to the start of the chain.
        let mut j = i;
        while j >= 2 && toks[j - 1].kind == TokKind::Punct(']') {
            let mut k = j - 1;
            let mut depth = 0i32;
            while k > 0 {
                match toks[k].kind {
                    TokKind::Punct(']') => depth += 1,
                    TokKind::Punct('[') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k -= 1;
            }
            if k >= 1 && toks[k - 1].kind == TokKind::Punct('#') {
                j = k - 1;
            } else {
                break;
            }
        }
        let item_start = toks[j].line;
        // Nearest comment above the item with no code in between must be an
        // outer doc comment.
        let documented = lexed
            .comments
            .iter()
            .rev()
            .find(|c| {
                c.end_line < item_start
                    && (c.end_line + 1..item_start).all(|l| !lexed.line_has_code(l))
            })
            .map(|c| c.text.starts_with('/'))
            .unwrap_or(false);
        if !documented {
            let name = toks
                .iter()
                .skip(i + 1)
                .find_map(|t| match &t.kind {
                    TokKind::Ident(s)
                        if ![
                            "fn", "struct", "enum", "trait", "mod", "type", "const", "static",
                            "unsafe", "async", "extern", "union", "impl",
                        ]
                        .contains(&s.as_str()) =>
                    {
                        Some(s.clone())
                    }
                    _ => None,
                })
                .unwrap_or_else(|| "<item>".into());
            emit(
                "api-doc",
                toks[i].line,
                format!("public item `{name}` on the umbrella surface has no doc comment"),
            );
        }
    }
}

/// `#[non_exhaustive]` structs must not declare public fields beyond the
/// snapshot in the config.
fn non_exhaustive_rule(
    cfg: &LintConfig,
    lexed: &Lexed,
    depths: &[u32],
    emit: &mut impl FnMut(&'static str, u32, String),
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        // Match `# [ non_exhaustive ]`.
        if toks[i].kind != TokKind::Punct('#')
            || toks.get(i + 1).map(|t| &t.kind) != Some(&TokKind::Punct('['))
            || toks.get(i + 2).map(|t| &t.kind) != Some(&TokKind::Ident("non_exhaustive".into()))
            || toks.get(i + 3).map(|t| &t.kind) != Some(&TokKind::Punct(']'))
        {
            continue;
        }
        // Find the `struct Name {` this attribute decorates (skipping other
        // attributes such as `#[derive(...)]`).
        let mut k = i + 4;
        let mut name = None;
        while k + 1 < toks.len() {
            match &toks[k].kind {
                TokKind::Ident(s) if s == "struct" => {
                    if let TokKind::Ident(n) = &toks[k + 1].kind {
                        name = Some((n.clone(), k + 2));
                    }
                    break;
                }
                TokKind::Ident(s) if s == "enum" => break, // enums have no fields
                TokKind::Punct(';') => break,
                _ => k += 1,
            }
        }
        let Some((name, mut body)) = name else {
            continue;
        };
        // Skip generics to the `{` (tuple structs `(` have no named fields).
        while body < toks.len()
            && toks[body].kind != TokKind::Punct('{')
            && toks[body].kind != TokKind::Punct('(')
            && toks[body].kind != TokKind::Punct(';')
        {
            body += 1;
        }
        if body >= toks.len() || toks[body].kind != TokKind::Punct('{') {
            continue;
        }
        let field_depth = depths[body] + 1;
        let empty = Vec::new();
        let known = cfg.non_exhaustive_fields.get(&name).unwrap_or(&empty);
        let mut f = body + 1;
        while f < toks.len() && depths[f] >= field_depth {
            if depths[f] == field_depth
                && toks[f].kind == TokKind::Ident("pub".into())
                && toks.get(f + 1).map(|t| t.kind != TokKind::Punct('(')) == Some(true)
            {
                if let Some(TokKind::Ident(field)) = toks.get(f + 1).map(|t| &t.kind) {
                    if toks.get(f + 2).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                        && !known.iter().any(|x| x == field)
                    {
                        emit(
                            "non-exhaustive",
                            toks[f].line,
                            format!(
                                "`#[non_exhaustive]` config `{name}` gained public field \
                                 `{field}` — add a `with_{field}` builder and keep the field \
                                 private (or deliberately extend the snapshot in xtask)"
                            ),
                        );
                    }
                }
            }
            f += 1;
        }
    }
}

/// Line spans covered by `#[cfg(test)]` or `#[test]` items.
pub(crate) fn test_regions(lexed: &Lexed, depths: &[u32]) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Punct('#')
            || toks.get(i + 1).map(|t| &t.kind) != Some(&TokKind::Punct('['))
        {
            continue;
        }
        let is_cfg_test = toks.get(i + 2).map(|t| &t.kind) == Some(&TokKind::Ident("cfg".into()))
            && toks.get(i + 3).map(|t| &t.kind) == Some(&TokKind::Punct('('))
            && toks.get(i + 4).map(|t| &t.kind) == Some(&TokKind::Ident("test".into()));
        let is_test_attr = toks.get(i + 2).map(|t| &t.kind) == Some(&TokKind::Ident("test".into()))
            && toks.get(i + 3).map(|t| &t.kind) == Some(&TokKind::Punct(']'));
        if !is_cfg_test && !is_test_attr {
            continue;
        }
        // Scope: from the attribute through the decorated item's last brace.
        let close = toks[i..]
            .iter()
            .position(|t| t.kind == TokKind::Punct(']'))
            .map(|p| i + p);
        let Some(close) = close else { continue };
        let d0 = depths[i];
        let mut cur = d0;
        let mut opened = false;
        let mut end = toks.last().map(|t| t.line).unwrap_or(toks[i].line);
        for t in toks.iter().skip(close + 1) {
            match t.kind {
                TokKind::Punct('{') => {
                    if cur == d0 {
                        opened = true;
                    }
                    cur += 1;
                }
                TokKind::Punct('}') => {
                    cur = cur.saturating_sub(1);
                    if cur < d0 || (opened && cur == d0) {
                        end = t.line;
                        break;
                    }
                }
                TokKind::Punct(';') if cur == d0 && !opened => {
                    end = t.line;
                    break;
                }
                _ => {}
            }
        }
        spans.push((toks[i].line, end));
    }
    spans
}

/// Every `tests/proptest_*.rs` needs a sibling `.proptest-regressions` file
/// (checked in, duplicate-free), and `.gitignore` must not hide them.
fn proptest_regressions_rule(cfg: &LintConfig, rs_files: &[PathBuf], report: &mut Report) {
    for path in rs_files {
        let rel = relative(&cfg.root, path);
        if cfg.skipped(&rel) {
            continue;
        }
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let in_tests = rel.split('/').any(|c| c == "tests");
        if !in_tests || !name.starts_with("proptest_") {
            continue;
        }
        let sibling = path.with_extension("proptest-regressions");
        if !sibling.exists() {
            report.findings.push(Finding {
                rule: "proptest-regressions",
                file: rel.clone(),
                line: 1,
                message: format!(
                    "proptest suite has no checked-in `{}` — create it (header-only is fine) \
                     so regression seeds are stable across CI jobs",
                    relative(&cfg.root, &sibling)
                ),
            });
            continue;
        }
        if let Ok(content) = std::fs::read_to_string(&sibling) {
            let mut seen = std::collections::BTreeSet::new();
            for (idx, l) in content.lines().enumerate() {
                let l = l.trim();
                if l.starts_with("cc ") && !seen.insert(l.to_string()) {
                    report.findings.push(Finding {
                        rule: "proptest-regressions",
                        file: relative(&cfg.root, &sibling),
                        line: (idx + 1) as u32,
                        message: "duplicate regression seed — dedupe the file".to_string(),
                    });
                }
            }
        }
    }
    let gitignore = cfg.root.join(".gitignore");
    if let Ok(content) = std::fs::read_to_string(&gitignore) {
        for (idx, l) in content.lines().enumerate() {
            if l.contains("proptest-regressions") && !l.trim_start().starts_with('#') {
                report.findings.push(Finding {
                    rule: "proptest-regressions",
                    file: ".gitignore".to_string(),
                    line: (idx + 1) as u32,
                    message: "regression seed files must be checked in, not ignored".to_string(),
                });
            }
        }
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    if dir.is_file() {
        out.push(dir.to_path_buf());
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name == "target" || name == ".git" || name == "fixtures" {
            continue;
        }
        if path.is_dir() {
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
