//! The `prs-lint` rule suite.
//!
//! Each rule is a pass over the token stream of the files in its configured
//! path set, reported with file and line. The paper-specific rationale for
//! every rule lives in `docs/ANALYSIS.md`; in one line each:
//!
//! * `float` — the incentive-ratio proofs need the decomposition to be
//!   *exact*; no `f64`/`f32` types or float literals may appear in the
//!   exact kernels. The f64 capacity backend may only *propose*, never
//!   decide, and is the single `float_boundary_exempt` module where floats
//!   (and casts into them) are permitted.
//! * `cast` — `as` numeric casts truncate silently; exact kernels must use
//!   `From`/`TryFrom` or carry a range argument in an allow annotation.
//! * `panic` — library code must push failures into typed errors
//!   (`prs_core::Error`), not abort: no `unwrap`/`expect`/`panic!`-family
//!   macros outside tests.
//! * `hash-iter` — sweep and bench paths promise deterministic, in-order
//!   output; `HashMap`/`HashSet` iteration order is arbitrary, so those
//!   paths must use `BTreeMap`/`BTreeSet` or sort explicitly.
//! * `api-doc` — items declared on the umbrella surface must be documented
//!   (`pub use` re-exports inherit docs and are exempt).
//! * `non-exhaustive` — `#[non_exhaustive]` config structs must not *gain*
//!   public fields; new knobs go behind `with_*` builders. The known field
//!   sets are snapshotted in the lint config.
//! * `proptest-regressions` — every proptest suite must have a checked-in
//!   sibling `.proptest-regressions` file with no duplicate seeds, and the
//!   files must not be gitignored (seeds stay stable across CI jobs).
//! * `annotation` — a malformed or stale `prs-lint:` directive is itself a
//!   violation, so the escape hatch cannot rot.

use crate::allow::collect_allows;
use crate::lexer::{lex, Lexed, TokKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// File, relative to the lint root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// One violation that an allow annotation silenced (counted, not hidden).
#[derive(Debug, Clone)]
pub struct AllowedSite {
    /// Rule that would have fired.
    pub rule: String,
    /// File, relative to the lint root.
    pub file: String,
    /// 1-based line of the silenced site.
    pub line: u32,
    /// The annotation's reason.
    pub reason: String,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Escape hatches exercised, sorted by (file, line).
    pub allowed: Vec<AllowedSite>,
}

impl Report {
    /// Allowed-site count per rule (for the summary line).
    pub fn allowed_by_rule(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for a in &self.allowed {
            *out.entry(a.rule.clone()).or_insert(0) += 1;
        }
        out
    }
}

/// Where each rule applies. Paths are `/`-separated and relative to `root`;
/// an entry matches itself and everything beneath it.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root all paths are relative to.
    pub root: PathBuf,
    /// Directories to walk for `.rs` files and proptest suites.
    pub scan_roots: Vec<String>,
    /// Path prefixes never linted (vendored shims, fixtures, build output).
    pub skip: Vec<String>,
    /// Exact kernels: no floats.
    pub float_paths: Vec<String>,
    /// No `as` numeric casts (superset of the exact kernels).
    pub cast_paths: Vec<String>,
    /// The designated float-backend modules: carved out of *both* the
    /// `float` and `cast` rules even when a parent directory is covered.
    /// This is the boundary that makes "floats may propose, never decide"
    /// checkable — exactly one module in the flow crate may mention `f64`.
    pub float_boundary_exempt: Vec<String>,
    /// Library code: no panicking calls outside tests.
    pub panic_paths: Vec<String>,
    /// Deterministic sweep/bench paths: no hash collections.
    pub hash_paths: Vec<String>,
    /// Files whose declared `pub` items must carry doc comments.
    pub api_doc_files: Vec<String>,
    /// Snapshot of permitted public fields per `#[non_exhaustive]` struct.
    pub non_exhaustive_fields: BTreeMap<String, Vec<String>>,
}

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl LintConfig {
    /// The real workspace rule map (see `docs/ANALYSIS.md` for rationale).
    pub fn workspace(root: PathBuf) -> Self {
        let exact_kernels = vec![
            // All big-integer / rational arithmetic.
            "crates/numeric/src".to_string(),
            // The whole flow crate: the generic Dinic kernel, the Capacity
            // trait, and the exact backends. The one sanctioned float
            // module is carved back out via `float_boundary_exempt`.
            "crates/flow/src".to_string(),
            // The decomposition driver, the session replay/certify paths,
            // and the delta-mutation vocabulary (cells evaluate exact
            // Möbius curves; a float anywhere here could skew an α̂).
            "crates/bd/src/decomposition.rs".to_string(),
            "crates/bd/src/session.rs".to_string(),
            "crates/bd/src/delta.rs".to_string(),
            // The trace recorder: instrumented from inside the exact kernels,
            // so its own arithmetic (timing, percentiles, JSON export) must
            // stay integer-only too.
            "crates/trace/src".to_string(),
        ];
        let mut cast_paths = exact_kernels.clone();
        // The cast rule additionally covers the bd glue: a truncating cast
        // there can bias proposals systematically, and satellite
        // instrumentation must state its ranges.
        cast_paths.push("crates/bd/src".to_string());
        LintConfig {
            root,
            scan_roots: vec!["crates".into(), "src".into(), "tests".into()],
            skip: vec![
                "crates/xtask".into(), // the linter itself (dev tool, not library surface)
                "crates/bench".into(), // harness binaries; prints and unwraps are its job
            ],
            float_paths: exact_kernels,
            cast_paths,
            // The f64 Capacity backend is the single module allowed to
            // mention floats or cast into them; everything else in the flow
            // crate is generic over the Capacity trait and stays exact.
            // The checked-i128 fast tier (`network_i128.rs`) is deliberately
            // NOT exempted: it is an exact backend and every rule covers it.
            float_boundary_exempt: vec!["crates/flow/src/network_f64.rs".to_string()],
            panic_paths: vec![
                "crates/numeric/src".into(),
                "crates/graph/src".into(),
                "crates/flow/src".into(),
                "crates/bd/src".into(),
                "crates/core/src".into(),
                "crates/cli/src".into(),
                "crates/deviation/src".into(),
                "crates/sybil/src".into(),
                "crates/dynamics/src".into(),
                "crates/p2psim/src".into(),
                "crates/eg/src".into(),
                // The recorder runs inside every layer above; a panic here
                // takes the whole solver down with it.
                "crates/trace/src".into(),
            ],
            hash_paths: vec![
                "crates/deviation/src".into(),
                "crates/bd/src".into(),
                "crates/sybil/src".into(),
                "crates/dynamics/src/parallel.rs".into(),
                "crates/p2psim/src/parallel.rs".into(),
                "crates/bench".into(),
                // Exporters group spans; hash iteration order would make the
                // summary / JSON output nondeterministic run to run.
                "crates/trace/src".into(),
            ],
            api_doc_files: vec!["src/lib.rs".into()],
            non_exhaustive_fields: BTreeMap::from([
                (
                    "AttackConfig".to_string(),
                    [
                        "grid",
                        "zoom_levels",
                        "keep",
                        "warm_start",
                        "cache_capacity",
                    ]
                    .map(String::from)
                    .to_vec(),
                ),
                (
                    "GeneralAttackConfig".to_string(),
                    ["grid", "max_copies", "warm_start", "cache_capacity"]
                        .map(String::from)
                        .to_vec(),
                ),
                (
                    "SweepConfig".to_string(),
                    ["grid", "refine_bits", "warm_start", "cache_capacity"]
                        .map(String::from)
                        .to_vec(),
                ),
                (
                    "SessionConfig".to_string(),
                    ["warm_start", "cache_capacity"].map(String::from).to_vec(),
                ),
                (
                    "TraceConfig".to_string(),
                    ["enabled", "max_events_per_thread"]
                        .map(String::from)
                        .to_vec(),
                ),
            ]),
        }
    }

    fn matches(&self, set: &[String], rel: &str) -> bool {
        set.iter()
            .any(|p| rel == p || rel.starts_with(&format!("{p}/")))
    }

    fn skipped(&self, rel: &str) -> bool {
        self.matches(&self.skip, rel)
    }
}

/// Run every rule over the configured tree.
pub fn run(cfg: &LintConfig) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut rs_files = Vec::new();
    for scan in &cfg.scan_roots {
        walk(&cfg.root.join(scan), &mut rs_files)?;
    }
    rs_files.sort();

    for path in &rs_files {
        let rel = relative(&cfg.root, path);
        if cfg.skipped(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        lint_file(cfg, &rel, &src, &mut report);
    }

    proptest_regressions_rule(cfg, &rs_files, &mut report);

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .allowed
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Lint one file's source (exposed for the fixture self-tests).
pub fn lint_file(cfg: &LintConfig, rel: &str, src: &str, report: &mut Report) {
    // Test-only code is exempt from the code rules; the regressions rule
    // handles tests/ directories separately.
    let in_test_dir = rel.split('/').any(|c| c == "tests" || c == "benches");

    let lexed = lex(src);
    let depths = lexed.depths();
    let (allows, bad) = collect_allows(&lexed);
    for b in bad {
        report.findings.push(Finding {
            rule: "annotation",
            file: rel.to_string(),
            line: b.line,
            message: b.message,
        });
    }
    let test_spans = test_regions(&lexed, &depths);
    let in_tests = |line: u32| test_spans.iter().any(|&(s, e)| line >= s && line <= e);

    let mut emit = |rule: &'static str, line: u32, message: String| {
        if in_test_dir || in_tests(line) {
            return;
        }
        if let Some(a) = allows.iter().find(|a| {
            a.rules.iter().any(|r| r == rule) && line >= a.start_line && line <= a.end_line
        }) {
            a.used.set(true);
            report.allowed.push(AllowedSite {
                rule: rule.to_string(),
                file: rel.to_string(),
                line,
                reason: a.reason.clone(),
            });
            return;
        }
        report.findings.push(Finding {
            rule,
            file: rel.to_string(),
            line,
            message,
        });
    };

    let boundary_exempt = cfg.matches(&cfg.float_boundary_exempt, rel);
    if !boundary_exempt && cfg.matches(&cfg.float_paths, rel) {
        float_rule(&lexed, &mut emit);
    }
    if !boundary_exempt && cfg.matches(&cfg.cast_paths, rel) {
        cast_rule(&lexed, &mut emit);
    }
    if cfg.matches(&cfg.panic_paths, rel) {
        panic_rule(&lexed, &mut emit);
    }
    if cfg.matches(&cfg.hash_paths, rel) {
        hash_rule(&lexed, &mut emit);
    }
    if cfg.api_doc_files.iter().any(|f| f == rel) {
        api_doc_rule(&lexed, &depths, &mut emit);
    }
    non_exhaustive_rule(cfg, &lexed, &depths, &mut emit);

    // Stale escape hatches are violations too.
    for a in allows.iter().filter(|a| !a.used.get()) {
        report.findings.push(Finding {
            rule: "annotation",
            file: rel.to_string(),
            line: a.comment_line,
            message: format!(
                "stale allow({}) — it silences nothing; remove it",
                a.rules.join(", ")
            ),
        });
    }
}

/// `f64`/`f32` tokens and float literals.
fn float_rule(lexed: &Lexed, emit: &mut impl FnMut(&'static str, u32, String)) {
    for t in &lexed.tokens {
        match &t.kind {
            TokKind::Ident(s) if s == "f64" || s == "f32" => emit(
                "float",
                t.line,
                format!("`{s}` in an exact kernel — floats may propose, never decide"),
            ),
            TokKind::Float => emit(
                "float",
                t.line,
                "float literal in an exact kernel".to_string(),
            ),
            _ => {}
        }
    }
}

/// `as <numeric type>` casts.
fn cast_rule(lexed: &Lexed, emit: &mut impl FnMut(&'static str, u32, String)) {
    for w in lexed.tokens.windows(2) {
        if let (TokKind::Ident(a), TokKind::Ident(ty)) = (&w[0].kind, &w[1].kind) {
            if a == "as" && NUMERIC_TYPES.contains(&ty.as_str()) {
                emit(
                    "cast",
                    w[0].line,
                    format!("`as {ty}` cast — use From/TryFrom or state the range in an allow"),
                );
            }
        }
    }
}

/// `.unwrap()` / `.expect(` and panic-family macros.
fn panic_rule(lexed: &Lexed, emit: &mut impl FnMut(&'static str, u32, String)) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if let TokKind::Ident(name) = &toks[i].kind {
            if PANIC_METHODS.contains(&name.as_str())
                && i > 0
                && toks[i - 1].kind == TokKind::Punct('.')
                && toks.get(i + 1).map(|t| t.kind == TokKind::Punct('(')) == Some(true)
            {
                emit(
                    "panic",
                    toks[i].line,
                    format!("`.{name}()` in library code — return a typed error instead"),
                );
            }
            if PANIC_MACROS.contains(&name.as_str())
                && toks.get(i + 1).map(|t| t.kind == TokKind::Punct('!')) == Some(true)
            {
                emit(
                    "panic",
                    toks[i].line,
                    format!("`{name}!` in library code — return a typed error instead"),
                );
            }
        }
    }
}

/// `HashMap` / `HashSet` in deterministic paths.
fn hash_rule(lexed: &Lexed, emit: &mut impl FnMut(&'static str, u32, String)) {
    for t in &lexed.tokens {
        if let TokKind::Ident(s) = &t.kind {
            if s == "HashMap" || s == "HashSet" {
                emit(
                    "hash-iter",
                    t.line,
                    format!("`{s}` in a deterministic path — use BTree collections or sort"),
                );
            }
        }
    }
}

/// Declared `pub` items at file depth 0 need a doc comment (`pub use` and
/// `pub(crate)` are exempt).
fn api_doc_rule(lexed: &Lexed, depths: &[u32], emit: &mut impl FnMut(&'static str, u32, String)) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if depths[i] != 0 || toks[i].kind != TokKind::Ident("pub".to_string()) {
            continue;
        }
        match toks.get(i + 1).map(|t| &t.kind) {
            Some(TokKind::Ident(k)) if k == "use" => continue,
            Some(TokKind::Punct('(')) => continue, // pub(crate): not public API
            _ => {}
        }
        // Walk back over the item's attributes to the start of the chain.
        let mut j = i;
        while j >= 2 && toks[j - 1].kind == TokKind::Punct(']') {
            let mut k = j - 1;
            let mut depth = 0i32;
            while k > 0 {
                match toks[k].kind {
                    TokKind::Punct(']') => depth += 1,
                    TokKind::Punct('[') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k -= 1;
            }
            if k >= 1 && toks[k - 1].kind == TokKind::Punct('#') {
                j = k - 1;
            } else {
                break;
            }
        }
        let item_start = toks[j].line;
        // Nearest comment above the item with no code in between must be an
        // outer doc comment.
        let documented = lexed
            .comments
            .iter()
            .rev()
            .find(|c| {
                c.end_line < item_start
                    && (c.end_line + 1..item_start).all(|l| !lexed.line_has_code(l))
            })
            .map(|c| c.text.starts_with('/'))
            .unwrap_or(false);
        if !documented {
            let name = toks
                .iter()
                .skip(i + 1)
                .find_map(|t| match &t.kind {
                    TokKind::Ident(s)
                        if ![
                            "fn", "struct", "enum", "trait", "mod", "type", "const", "static",
                            "unsafe", "async", "extern", "union", "impl",
                        ]
                        .contains(&s.as_str()) =>
                    {
                        Some(s.clone())
                    }
                    _ => None,
                })
                .unwrap_or_else(|| "<item>".into());
            emit(
                "api-doc",
                toks[i].line,
                format!("public item `{name}` on the umbrella surface has no doc comment"),
            );
        }
    }
}

/// `#[non_exhaustive]` structs must not declare public fields beyond the
/// snapshot in the config.
fn non_exhaustive_rule(
    cfg: &LintConfig,
    lexed: &Lexed,
    depths: &[u32],
    emit: &mut impl FnMut(&'static str, u32, String),
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        // Match `# [ non_exhaustive ]`.
        if toks[i].kind != TokKind::Punct('#')
            || toks.get(i + 1).map(|t| &t.kind) != Some(&TokKind::Punct('['))
            || toks.get(i + 2).map(|t| &t.kind) != Some(&TokKind::Ident("non_exhaustive".into()))
            || toks.get(i + 3).map(|t| &t.kind) != Some(&TokKind::Punct(']'))
        {
            continue;
        }
        // Find the `struct Name {` this attribute decorates (skipping other
        // attributes such as `#[derive(...)]`).
        let mut k = i + 4;
        let mut name = None;
        while k + 1 < toks.len() {
            match &toks[k].kind {
                TokKind::Ident(s) if s == "struct" => {
                    if let TokKind::Ident(n) = &toks[k + 1].kind {
                        name = Some((n.clone(), k + 2));
                    }
                    break;
                }
                TokKind::Ident(s) if s == "enum" => break, // enums have no fields
                TokKind::Punct(';') => break,
                _ => k += 1,
            }
        }
        let Some((name, mut body)) = name else {
            continue;
        };
        // Skip generics to the `{` (tuple structs `(` have no named fields).
        while body < toks.len()
            && toks[body].kind != TokKind::Punct('{')
            && toks[body].kind != TokKind::Punct('(')
            && toks[body].kind != TokKind::Punct(';')
        {
            body += 1;
        }
        if body >= toks.len() || toks[body].kind != TokKind::Punct('{') {
            continue;
        }
        let field_depth = depths[body] + 1;
        let empty = Vec::new();
        let known = cfg.non_exhaustive_fields.get(&name).unwrap_or(&empty);
        let mut f = body + 1;
        while f < toks.len() && depths[f] >= field_depth {
            if depths[f] == field_depth
                && toks[f].kind == TokKind::Ident("pub".into())
                && toks.get(f + 1).map(|t| t.kind != TokKind::Punct('(')) == Some(true)
            {
                if let Some(TokKind::Ident(field)) = toks.get(f + 1).map(|t| &t.kind) {
                    if toks.get(f + 2).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                        && !known.iter().any(|x| x == field)
                    {
                        emit(
                            "non-exhaustive",
                            toks[f].line,
                            format!(
                                "`#[non_exhaustive]` config `{name}` gained public field \
                                 `{field}` — add a `with_{field}` builder and keep the field \
                                 private (or deliberately extend the snapshot in xtask)"
                            ),
                        );
                    }
                }
            }
            f += 1;
        }
    }
}

/// Line spans covered by `#[cfg(test)]` or `#[test]` items.
fn test_regions(lexed: &Lexed, depths: &[u32]) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Punct('#')
            || toks.get(i + 1).map(|t| &t.kind) != Some(&TokKind::Punct('['))
        {
            continue;
        }
        let is_cfg_test = toks.get(i + 2).map(|t| &t.kind) == Some(&TokKind::Ident("cfg".into()))
            && toks.get(i + 3).map(|t| &t.kind) == Some(&TokKind::Punct('('))
            && toks.get(i + 4).map(|t| &t.kind) == Some(&TokKind::Ident("test".into()));
        let is_test_attr = toks.get(i + 2).map(|t| &t.kind) == Some(&TokKind::Ident("test".into()))
            && toks.get(i + 3).map(|t| &t.kind) == Some(&TokKind::Punct(']'));
        if !is_cfg_test && !is_test_attr {
            continue;
        }
        // Scope: from the attribute through the decorated item's last brace.
        let close = toks[i..]
            .iter()
            .position(|t| t.kind == TokKind::Punct(']'))
            .map(|p| i + p);
        let Some(close) = close else { continue };
        let d0 = depths[i];
        let mut cur = d0;
        let mut opened = false;
        let mut end = toks.last().map(|t| t.line).unwrap_or(toks[i].line);
        for t in toks.iter().skip(close + 1) {
            match t.kind {
                TokKind::Punct('{') => {
                    if cur == d0 {
                        opened = true;
                    }
                    cur += 1;
                }
                TokKind::Punct('}') => {
                    cur = cur.saturating_sub(1);
                    if cur < d0 || (opened && cur == d0) {
                        end = t.line;
                        break;
                    }
                }
                TokKind::Punct(';') if cur == d0 && !opened => {
                    end = t.line;
                    break;
                }
                _ => {}
            }
        }
        spans.push((toks[i].line, end));
    }
    spans
}

/// Every `tests/proptest_*.rs` needs a sibling `.proptest-regressions` file
/// (checked in, duplicate-free), and `.gitignore` must not hide them.
fn proptest_regressions_rule(cfg: &LintConfig, rs_files: &[PathBuf], report: &mut Report) {
    for path in rs_files {
        let rel = relative(&cfg.root, path);
        if cfg.skipped(&rel) {
            continue;
        }
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let in_tests = rel.split('/').any(|c| c == "tests");
        if !in_tests || !name.starts_with("proptest_") {
            continue;
        }
        let sibling = path.with_extension("proptest-regressions");
        if !sibling.exists() {
            report.findings.push(Finding {
                rule: "proptest-regressions",
                file: rel.clone(),
                line: 1,
                message: format!(
                    "proptest suite has no checked-in `{}` — create it (header-only is fine) \
                     so regression seeds are stable across CI jobs",
                    relative(&cfg.root, &sibling)
                ),
            });
            continue;
        }
        if let Ok(content) = std::fs::read_to_string(&sibling) {
            let mut seen = std::collections::BTreeSet::new();
            for (idx, l) in content.lines().enumerate() {
                let l = l.trim();
                if l.starts_with("cc ") && !seen.insert(l.to_string()) {
                    report.findings.push(Finding {
                        rule: "proptest-regressions",
                        file: relative(&cfg.root, &sibling),
                        line: (idx + 1) as u32,
                        message: "duplicate regression seed — dedupe the file".to_string(),
                    });
                }
            }
        }
    }
    let gitignore = cfg.root.join(".gitignore");
    if let Ok(content) = std::fs::read_to_string(&gitignore) {
        for (idx, l) in content.lines().enumerate() {
            if l.contains("proptest-regressions") && !l.trim_start().starts_with('#') {
                report.findings.push(Finding {
                    rule: "proptest-regressions",
                    file: ".gitignore".to_string(),
                    line: (idx + 1) as u32,
                    message: "regression seed files must be checked in, not ignored".to_string(),
                });
            }
        }
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    if dir.is_file() {
        out.push(dir.to_path_buf());
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name == "target" || name == ".git" || name == "fixtures" {
            continue;
        }
        if path.is_dir() {
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
