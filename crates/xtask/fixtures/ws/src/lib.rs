//! Fixture umbrella crate surface (`src/lib.rs` is an `api-doc` file).

pub use std::vec::Vec as ReexportedVec;

/// Documented — satisfies the api-doc rule.
pub fn documented() {}

pub fn undocumented() {}

#[derive(Clone, Copy)]
pub struct Sneaky;
