//! Fixture: a `#[non_exhaustive]` config struct that grew a public knob.

#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct AttackConfig {
    pub grid: usize,
    pub sneaky_knob: usize,
    keep: usize,
}
