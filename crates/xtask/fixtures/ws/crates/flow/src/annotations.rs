//! Fixture: the allow grammar — exercised, stale, malformed, and trailing.

// prs-lint: allow(cast, reason = "fixture: sanctioned narrowing")
pub fn sanctioned(x: u64) -> u32 {
    x as u32
}

// prs-lint: allow(cast, reason = "fixture: covers nothing")
pub fn stale_target() -> u32 {
    7
}

// prs-lint: allow(cast)
pub fn missing_reason(x: u64) -> u32 {
    x as u32
}

// prs-lint: allow(warp-drive, reason = "fixture: unknown rule")
pub fn unknown_rule() -> u32 {
    3
}

pub fn trailing(x: u64) -> u32 {
    x as u32 // prs-lint: allow(cast, reason = "fixture: trailing form")
}
