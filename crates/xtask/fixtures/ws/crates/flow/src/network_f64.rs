//! Fixture: the sanctioned float-backend module. Floats and numeric casts
//! here are *exempt* (float_boundary_exempt), so none of the tokens below
//! may produce a finding — this file proves the carve-out works.

pub fn headroom(flow: f64, cap: f64, eps: f64) -> bool {
    flow + eps < cap
}

pub fn from_ratio(num: i64, den: i64) -> f64 {
    num as f64 / den as f64
}
