//! Fixture: a checked-i128 backend smuggling floats, lossy casts, and
//! panics past the overflow boundary — every kernel rule must fire here.

pub fn headroom_ratio(flow: i128, cap: i128) -> f64 {
    (cap - flow) as f64
}

pub fn narrow_total(total: i128) -> i64 {
    total as i64
}

pub fn checked_or_die(a: i128, b: i128) -> i128 {
    a.checked_add(b).unwrap()
}
