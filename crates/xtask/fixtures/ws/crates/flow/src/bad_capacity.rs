//! Fixture: a Capacity backend leaking floats, casts, and panics into the
//! generic kernel directory — every boundary rule must fire here.

pub fn tolerant_compare(flow: f64, cap: f64) -> bool {
    flow + 1e-12 < cap
}

pub fn scale_to_units(cap: u64) -> i64 {
    cap as i64
}

pub fn bottleneck_or_die(limit: Option<u64>) -> u64 {
    limit.expect("no finite arc on the path")
}
