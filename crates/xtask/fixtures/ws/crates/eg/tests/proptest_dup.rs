//! Fixture: duplicate seeds in the sibling regressions file.

#[test]
fn placeholder() {}
