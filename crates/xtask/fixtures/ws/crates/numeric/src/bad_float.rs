//! Fixture: floats, casts, and panics inside an exact kernel
//! (`crates/numeric/src` is an exact-kernel path, so `float`, `cast`,
//! and `panic` all apply).

pub fn leaky(x: u64) -> f64 {
    let y = 0.5;
    let z = x as f64;
    y + z
}

pub fn truncating(x: u64) -> u32 {
    x as u32
}

pub fn aborting(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn graceful(v: &[u64]) -> u64 {
    v.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn floats_in_tests_are_exempt() {
        let x: f64 = 1.5;
        let y = (3u64) as f64;
        let z: Option<u32> = None;
        assert!(x + y > z.unwrap_or(0).into());
    }
}
