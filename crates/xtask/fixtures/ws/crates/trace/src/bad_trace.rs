//! Fixture: violations inside the trace recorder's rule paths
//! (`crates/trace/src` sits in the float, cast, panic, and hash-iter
//! sets), plus a `TraceConfig` field-snapshot breach.

use std::collections::HashMap;

pub fn leaky_rate(n: u64, d: u64) -> f64 {
    n as f64 / d as f64
}

pub fn unordered_groups() -> HashMap<String, u64> {
    HashMap::new()
}

pub fn aborting_flush(buf: Option<Vec<u64>>) -> Vec<u64> {
    buf.unwrap()
}

#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct TraceConfig {
    pub enabled: bool,
    pub rogue_knob: usize,
}
