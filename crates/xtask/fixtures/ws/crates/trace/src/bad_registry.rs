//! Fixture: `trace-registry` violations — one registered span plus a rogue
//! span and a rogue counter the fixture registry does not list.

pub fn traced() {
    let _sp = span("flow", "good_span");
    let _sq = span("flow", "rogue_span");
    let _c = Counter::new("fixture.rogue_counter");
}
