//! Fixture: hash collections in a deterministic sweep path.

use std::collections::HashMap;

pub fn tally(xs: &[usize]) -> HashMap<usize, usize> {
    let mut counts = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}
