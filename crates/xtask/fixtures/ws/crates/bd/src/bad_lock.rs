//! Fixture: `lock-order` violations — an `a`→`b` / `b`→`a` acquisition-
//! order cycle and a flow-engine invocation made while a pool lock is held.

use std::sync::Mutex;

struct Shards {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Shards {
    fn ab(&self) -> u64 {
        let _g = self.a.lock();
        let _h = self.b.lock();
        1
    }

    fn ba(&self) -> u64 {
        let _h = self.b.lock();
        let _g = self.a.lock();
        2
    }

    fn flow_under_lock(&self) -> u64 {
        let _g = self.a.lock();
        self.max_flow()
    }

    fn max_flow(&self) -> u64 {
        3
    }
}
