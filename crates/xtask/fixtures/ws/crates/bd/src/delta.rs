//! Fixture: the delta-mutation path is an exact kernel — no floats, no
//! numeric casts, no panicking calls outside tests.

pub fn predict(alpha: u64) -> f64 {
    let x = alpha as f64;
    x * 0.5
}

pub fn rounds(n: u64) -> usize {
    n as usize
}

pub fn first_round(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u64> = Some(3);
        v.unwrap();
    }
}
