//! Fixture: `panic-reach` violations — the public surface reaches an
//! unwrap through two private helpers (the lexical `panic` rule sees only
//! the site in `deep_helper`), plus an indexing chain behind the
//! `panic_reach_index_sites` gate.

pub struct Reach;

impl Reach {
    pub fn surface_entry(&self) -> u64 {
        mid_hop(7)
    }
}

fn mid_hop(x: u64) -> u64 {
    deep_helper(x)
}

fn deep_helper(x: u64) -> u64 {
    let v: Option<u64> = Some(x);
    v.unwrap()
}

pub fn pick_first(v: &[u64]) -> u64 {
    index_helper(v)
}

fn index_helper(v: &[u64]) -> u64 {
    v[0]
}
