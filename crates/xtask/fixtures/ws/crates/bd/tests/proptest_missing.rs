//! Fixture: a proptest suite with no checked-in regressions sibling.

#[test]
fn placeholder() {}
