//! prs-lint self-test.
//!
//! Two halves, matching the two promises the lint suite makes:
//!
//! 1. **Every rule fires** — `fixtures/ws/` is a miniature workspace with
//!    one seeded violation per rule at a known `file:line`; running the
//!    real workspace config over it must reproduce exactly those findings.
//! 2. **The real workspace is clean** — running the suite over this
//!    repository must produce zero findings (violations are either fixed
//!    or carry a counted, reasoned allow annotation).

use prs_lint::rules::{run, LintConfig, Report};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn fixture_report() -> Report {
    run(&LintConfig::workspace(fixture_root())).expect("fixture tree lints")
}

fn assert_finding(report: &Report, rule: &str, file: &str, line: u32) {
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && f.file == file && f.line == line),
        "expected [{rule}] at {file}:{line}; got:\n{}",
        render(report)
    );
}

fn assert_no_finding_at(report: &Report, rule: &str, file: &str, line: u32) {
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == rule && f.file == file && f.line == line),
        "unexpected [{rule}] at {file}:{line}"
    );
}

fn render(report: &Report) -> String {
    report
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}\n", f.file, f.line, f.rule, f.message))
        .collect()
}

#[test]
fn float_rule_fires_on_types_and_literals() {
    let r = fixture_report();
    let file = "crates/numeric/src/bad_float.rs";
    assert_finding(&r, "float", file, 5); // `-> f64`
    assert_finding(&r, "float", file, 6); // `0.5` literal
    assert_finding(&r, "float", file, 7); // `as f64` target type
}

#[test]
fn cast_rule_fires_on_as_numeric() {
    let r = fixture_report();
    let file = "crates/numeric/src/bad_float.rs";
    assert_finding(&r, "cast", file, 7); // `x as f64`
    assert_finding(&r, "cast", file, 12); // `x as u32`
}

#[test]
fn panic_rule_fires_on_unwrap_but_not_unwrap_or() {
    let r = fixture_report();
    let file = "crates/numeric/src/bad_float.rs";
    assert_finding(&r, "panic", file, 16); // `.unwrap()`
    assert_no_finding_at(&r, "panic", file, 20); // `.unwrap_or(0)` is fine
}

#[test]
fn test_regions_are_exempt_from_code_rules() {
    let r = fixture_report();
    let file = "crates/numeric/src/bad_float.rs";
    // Lines 23..=31 sit inside `#[cfg(test)] mod tests` and hold floats,
    // casts, and an unwrap_or — none may fire.
    for f in &r.findings {
        assert!(
            !(f.file == file && f.line >= 23),
            "rule [{}] fired inside a test region at {}:{}",
            f.rule,
            f.file,
            f.line
        );
    }
}

#[test]
fn hash_rule_fires_in_deterministic_paths() {
    let r = fixture_report();
    let file = "crates/bd/src/bad_hash.rs";
    assert_finding(&r, "hash-iter", file, 3); // the `use`
    assert_finding(&r, "hash-iter", file, 5); // return type
    assert_finding(&r, "hash-iter", file, 6); // constructor
}

#[test]
fn api_doc_rule_fires_on_undocumented_surface() {
    let r = fixture_report();
    let file = "src/lib.rs";
    assert_finding(&r, "api-doc", file, 8); // bare undocumented fn
    assert_finding(&r, "api-doc", file, 11); // attr-decorated undocumented struct
    assert_no_finding_at(&r, "api-doc", file, 3); // `pub use` is exempt
    assert_no_finding_at(&r, "api-doc", file, 6); // documented fn
}

#[test]
fn non_exhaustive_rule_fires_on_new_public_field() {
    let r = fixture_report();
    let file = "crates/sybil/src/bad_config.rs";
    assert_finding(&r, "non-exhaustive", file, 7); // `pub sneaky_knob`
    assert_no_finding_at(&r, "non-exhaustive", file, 6); // `grid` is in the snapshot
    assert_no_finding_at(&r, "non-exhaustive", file, 8); // private fields are fine
    let msg = r
        .findings
        .iter()
        .find(|f| f.rule == "non-exhaustive")
        .map(|f| f.message.clone())
        .unwrap_or_default();
    assert!(
        msg.contains("with_sneaky_knob"),
        "message should suggest the builder: {msg}"
    );
}

#[test]
fn trace_crate_paths_are_enforced() {
    // `crates/trace/src` joined every code-rule path set in PR 4; the
    // seeded fixture proves each rule actually fires there.
    let r = fixture_report();
    let file = "crates/trace/src/bad_trace.rs";
    assert_finding(&r, "hash-iter", file, 5); // the `use`
    assert_finding(&r, "float", file, 7); // `-> f64`
    assert_finding(&r, "float", file, 8); // `as f64` target type
    assert_finding(&r, "cast", file, 8); // `n as f64`
    assert_finding(&r, "hash-iter", file, 11); // return type
    assert_finding(&r, "hash-iter", file, 12); // constructor
    assert_finding(&r, "panic", file, 16); // `.unwrap()`
    assert_finding(&r, "non-exhaustive", file, 23); // `pub rogue_knob`
    assert_no_finding_at(&r, "non-exhaustive", file, 22); // `enabled` is in the snapshot
}

#[test]
fn flow_kernel_boundary_rules_fire() {
    // The kernel unification widened the float rule to all of
    // `crates/flow/src`; a backend leaking floats, casts, or panics into
    // the generic kernel directory must trip every boundary rule.
    let r = fixture_report();
    let file = "crates/flow/src/bad_capacity.rs";
    assert_finding(&r, "float", file, 4); // `f64` parameter types
    assert_finding(&r, "float", file, 5); // `1e-12` literal
    assert_finding(&r, "cast", file, 9); // `cap as i64`
    assert_finding(&r, "panic", file, 13); // `.expect(...)`
}

#[test]
fn i128_backend_boundary_rules_fire() {
    // The checked-i128 fast tier lives in the kernel directory and is
    // covered by every boundary rule (only `network_f64.rs` is carved
    // out): a fixture twin leaking floats, lossy casts, or panics past
    // the checked-arithmetic boundary must trip them all.
    let r = fixture_report();
    let file = "crates/flow/src/bad_i128.rs";
    assert_finding(&r, "float", file, 4); // `-> f64`
    assert_finding(&r, "float", file, 5); // `as f64` target type
    assert_finding(&r, "cast", file, 5); // `(cap - flow) as f64`
    assert_finding(&r, "cast", file, 9); // `total as i64`
    assert_finding(&r, "panic", file, 13); // `.unwrap()` on checked_add
}

#[test]
fn delta_module_boundary_rules_fire() {
    // The delta-mutation vocabulary (`crates/bd/src/delta.rs`) joined the
    // exact-kernel float set in ISSUE 7 (casts and panics were already
    // covered directory-wide): a fixture twin leaking floats, lossy casts,
    // or panics into the cell/α̂ arithmetic must trip every rule, while
    // its test module stays exempt.
    let r = fixture_report();
    let file = "crates/bd/src/delta.rs";
    assert_finding(&r, "float", file, 4); // `-> f64`
    assert_finding(&r, "float", file, 5); // `as f64` target type
    assert_finding(&r, "cast", file, 5); // `alpha as f64`
    assert_finding(&r, "float", file, 6); // `0.5` literal
    assert_finding(&r, "cast", file, 10); // `n as usize`
    assert_finding(&r, "panic", file, 14); // `.unwrap()`
    assert_no_finding_at(&r, "panic", file, 22); // test region exempt
}

#[test]
fn float_boundary_module_is_exempt() {
    // The sanctioned f64 backend module is carved out of the float and
    // cast rules: its fixture twin is saturated with floats and casts and
    // must produce no findings at all.
    let r = fixture_report();
    let file = "crates/flow/src/network_f64.rs";
    assert!(
        !r.findings.iter().any(|f| f.file == file),
        "float-boundary module produced findings:\n{}",
        render(&r)
    );
}

#[test]
fn annotation_rule_fires_on_malformed_and_stale_allows() {
    let r = fixture_report();
    let file = "crates/flow/src/annotations.rs";
    assert_finding(&r, "annotation", file, 8); // stale allow
    assert_finding(&r, "annotation", file, 13); // missing reason
    assert_finding(&r, "annotation", file, 18); // unknown rule name
                                                // A malformed allow silences nothing: the cast under it still fires.
    assert_finding(&r, "cast", file, 15);
}

#[test]
fn allow_annotations_are_counted_not_hidden() {
    let r = fixture_report();
    let file = "crates/flow/src/annotations.rs";
    // The two well-formed allows (own-line fn scope, trailing) register
    // allowed sites at the silenced lines, carrying their reasons.
    let sanctioned = r
        .allowed
        .iter()
        .find(|a| a.file == file && a.line == 5)
        .expect("own-line allow registers an allowed site");
    assert_eq!(sanctioned.rule, "cast");
    assert!(sanctioned.reason.contains("sanctioned narrowing"));
    let trailing = r
        .allowed
        .iter()
        .find(|a| a.file == file && a.line == 24)
        .expect("trailing allow registers an allowed site");
    assert_eq!(trailing.rule, "cast");
    assert_no_finding_at(&r, "cast", file, 5);
    assert_no_finding_at(&r, "cast", file, 24);
    assert_eq!(r.allowed_by_rule().get("cast"), Some(&2));
}

#[test]
fn proptest_regressions_rule_fires() {
    let r = fixture_report();
    // Missing sibling file.
    assert_finding(
        &r,
        "proptest-regressions",
        "crates/bd/tests/proptest_missing.rs",
        1,
    );
    // Duplicate seed in an existing sibling.
    assert_finding(
        &r,
        "proptest-regressions",
        "crates/eg/tests/proptest_dup.proptest-regressions",
        8,
    );
    // Uncommented gitignore entry hiding seed files.
    assert_finding(&r, "proptest-regressions", ".gitignore", 3);
}

fn finding_message(report: &Report, rule: &str, file: &str, line: u32) -> String {
    report
        .findings
        .iter()
        .find(|f| f.rule == rule && f.file == file && f.line == line)
        .map(|f| f.message.clone())
        .unwrap_or_else(|| panic!("no [{rule}] at {file}:{line}:\n{}", render(report)))
}

#[test]
fn panic_reach_fires_with_call_chain() {
    let r = fixture_report();
    let file = "crates/bd/src/bad_reach.rs";
    // The finding lands at the surface fn's definition line and prints the
    // whole offending chain plus the site location.
    assert_finding(&r, "panic-reach", file, 9);
    let msg = finding_message(&r, "panic-reach", file, 9);
    assert!(
        msg.contains("Reach::surface_entry → mid_hop → deep_helper"),
        "chain missing from message: {msg}"
    );
    assert!(
        msg.contains(".unwrap() at crates/bd/src/bad_reach.rs:20"),
        "site missing from message: {msg}"
    );
    // The direct site stays the lexical rule's finding…
    assert_finding(&r, "panic", file, 20);
    // …and the indexing chain is silent while the gate is off.
    assert_no_finding_at(&r, "panic-reach", file, 23);
}

#[test]
fn panic_reach_indexing_sites_are_gated() {
    let mut cfg = LintConfig::workspace(fixture_root());
    cfg.panic_reach_index_sites = true;
    let r = run(&cfg).expect("fixture tree lints");
    let file = "crates/bd/src/bad_reach.rs";
    assert_finding(&r, "panic-reach", file, 23); // pick_first → index_helper → v[0]
    let msg = finding_message(&r, "panic-reach", file, 23);
    assert!(msg.contains("index_helper"), "chain missing: {msg}");
}

#[test]
fn lock_order_cycle_and_flow_sink_fire() {
    let r = fixture_report();
    let file = "crates/bd/src/bad_lock.rs";
    // The a→b / b→a cycle reports at the earliest witness line…
    assert_finding(&r, "lock-order", file, 14);
    let msg = finding_message(&r, "lock-order", file, 14);
    assert!(
        msg.contains("a→b at crates/bd/src/bad_lock.rs:14")
            && msg.contains("b→a at crates/bd/src/bad_lock.rs:20"),
        "cycle witnesses missing: {msg}"
    );
    // …and the flow-engine call under a held pool lock reports at the call.
    assert_finding(&r, "lock-order", file, 26);
    let msg = finding_message(&r, "lock-order", file, 26);
    assert!(msg.contains("max_flow") && msg.contains("{a}"), "{msg}");
}

#[test]
fn trace_registry_diffs_both_directions() {
    let r = fixture_report();
    let file = "crates/trace/src/bad_registry.rs";
    // Sites missing from the registry report at the site…
    assert_finding(&r, "trace-registry", file, 6); // span flow.rogue_span
    assert_finding(&r, "trace-registry", file, 7); // counter fixture.rogue_counter
    assert_no_finding_at(&r, "trace-registry", file, 5); // registered span

    // …registry entries with no site report as stale, and an unsorted
    // registry is itself a finding (a shuffled file fails CI).
    let reg = "docs/trace-registry.txt";
    assert_finding(&r, "trace-registry", reg, 2); // stale: flow.zzz_late
    assert_finding(&r, "trace-registry", reg, 3); // stale: flow.ghost_span
    assert!(
        r.findings.iter().any(|f| f.rule == "trace-registry"
            && f.file == reg
            && f.line == 3
            && f.message.contains("out of order")),
        "expected an out-of-order finding at {reg}:3:\n{}",
        render(&r)
    );
}

#[test]
fn json_report_has_fixed_key_order() {
    let r = fixture_report();
    let json = r.to_json();
    assert!(json.starts_with("{\n  \"findings\": ["), "{json}");
    let fpos = json.find("\"findings\"").expect("findings key");
    let apos = json.find("\"allowed\"").expect("allowed key");
    let spos = json.find("\"summary\"").expect("summary key");
    assert!(fpos < apos && apos < spos, "top-level key order drifted");
    // Entries keep file → line → rule → message order and sorted position.
    assert!(
        json.contains(
            "{\"file\": \"crates/bd/src/bad_hash.rs\", \"line\": 3, \"rule\": \"hash-iter\", \
             \"message\": "
        ),
        "{json}"
    );
    assert!(json.contains(&format!(
        "\"summary\": {{\"findings\": {}, \"allowed\": {}}}",
        r.findings.len(),
        r.allowed.len()
    )));
    // Messages with quotes must be escaped (the panic rule quotes idents
    // with backticks, but allow reasons may hold anything).
    assert!(!json.contains("\n\""), "unescaped newline inside a string");
}

#[test]
fn every_rule_fires_on_the_fixture_tree() {
    let r = fixture_report();
    let fired: std::collections::BTreeSet<&str> = r.findings.iter().map(|f| f.rule).collect();
    for rule in [
        "float",
        "cast",
        "panic",
        "hash-iter",
        "api-doc",
        "non-exhaustive",
        "annotation",
        "proptest-regressions",
        "panic-reach",
        "lock-order",
        "trace-registry",
    ] {
        assert!(
            fired.contains(rule),
            "rule [{rule}] never fired:\n{}",
            render(&r)
        );
    }
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let r = prs_lint::run_lint(root).expect("workspace lints");
    assert!(
        r.findings.is_empty(),
        "prs-lint found violations in the workspace:\n{}",
        render(&r)
    );
    // The escape hatch is exercised (and counted) in the real tree.
    assert!(!r.allowed.is_empty(), "expected counted allow sites");
}
