//! Instance-family audits of every executable paper claim.
//!
//! `audit_paper_claims` bundles Prop. 3/6, Lemma 9, Thm. 10, Prop. 11,
//! Lemmas 14/20, the stage lemmas and Theorem 8; these tests run it over
//! structured and random families. A failure anywhere is a counterexample
//! to a published claim.

use prs::prelude::*;
use prs::RingInstance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn quick_cfg() -> AttackConfig {
    AttackConfig::new()
        .with_grid(12)
        .with_zoom_levels(2)
        .with_keep(2)
}

#[test]
fn audit_uniform_rings() {
    for n in [3usize, 4, 5, 6, 7] {
        let ring = RingInstance::from_integers(&vec![3; n]).unwrap();
        let audit = audit_paper_claims(&ring, &quick_cfg(), 8);
        assert!(audit.all_hold(), "uniform n={n}: {audit:?}");
        assert_eq!(audit.max_ratio, Rational::one(), "symmetric ⇒ no gain");
    }
}

#[test]
fn audit_two_scale_rings() {
    // Alternating heavy/light — the B/C class structure is extremal here.
    for (a, b) in [(1i64, 2), (1, 10), (1, 100)] {
        let ring = RingInstance::from_integers(&[a, b, a, b, a, b]).unwrap();
        let audit = audit_paper_claims(&ring, &quick_cfg(), 8);
        assert!(audit.all_hold(), "two-scale ({a},{b}): {audit:?}");
    }
}

#[test]
fn audit_random_rings() {
    let mut rng = StdRng::seed_from_u64(31415);
    for _ in 0..6 {
        let n = rng.gen_range(3..=7);
        let weights: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=15)).collect();
        let ring = RingInstance::from_integers(&weights).unwrap();
        let audit = audit_paper_claims(&ring, &quick_cfg(), 8);
        assert!(audit.all_hold(), "random {weights:?}: {audit:?}");
    }
}

#[test]
fn audit_rational_weight_rings() {
    let ring = RingInstance::new(vec![ratio(1, 3), ratio(7, 2), ratio(2, 5), ratio(9, 4)]).unwrap();
    let audit = audit_paper_claims(&ring, &quick_cfg(), 8);
    assert!(audit.all_hold(), "{audit:?}");
}

#[test]
fn audit_lower_bound_family() {
    // The ζ → 2 family used by experiment E11: even at high scale
    // separation every claim (including ζ ≤ 2) must keep holding.
    for k in [2u32, 6] {
        let g = prs::sybil::theorem8::lower_bound_ring(k);
        let ring = RingInstance::new(g.weights().to_vec()).unwrap();
        let audit = audit_paper_claims(&ring, &quick_cfg(), 8);
        assert!(audit.all_hold(), "lower-bound k={k}: {audit:?}");
    }
}

#[test]
fn theorem8_never_violated_across_search() {
    // Worst-case search also audits the bound at every evaluated instance.
    let report = worst_case_search(4, 4, 1, 999, &quick_cfg(), 2);
    assert!(report.upper_bound_holds);
    assert!(report.best_ratio <= Rational::from_integer(2));
}
