//! Directed regression: an α-ratio near-tie that **fools the float tier**
//! and forces the two-tier engine through its exact fallback.
//!
//! The 6-ring below carries two competing bottleneck gadgets:
//!
//! * `B = {1}` with `α({1}) = (w₀+w₂)/w₁ = 1/3` exactly, and
//! * `B = {4}` with `α({4}) = (w₃+w₅)/w₄ = 3333333333333333/10⁶⁺¹⁰+1`,
//!   which is *smaller* than 1/3 by ≈ 2·10⁻¹⁶ relative — far below every
//!   f64 working tolerance in the float tier (feasibility 1e-9, residual
//!   saturation 1e-12), and around the limit of f64 representation itself.
//!
//! The true maximal bottleneck is `{4}` alone, but the float tier cannot
//! separate the gadgets: its proposal lumps both together (exact ratio =
//! the mediant, strictly above the optimum), certification fails, and the
//! engine must fall back to the exact descent — which this test observes
//! through the `fast_path_fallbacks` counter. The result must still be
//! bit-identical to the single-tier exact engine. See docs/NUMERICS.md.
//!
//! This test lives in its own binary: the flow-stat counters are process
//! globals, and sharing the process with other tests would let their
//! decompositions blur the before/after deltas asserted here.

use prs::bd::{decompose, decompose_exact};
use prs::flow::stats;
use prs::prelude::*;

fn near_tie_ring() -> Graph {
    let w = |x: i64| Rational::from_integer(x);
    builders::ring(vec![
        w(50_000_000_000_000),     // 0: gadget-A neighbor
        w(300_000_000_000_000),    // 1: gadget-A bottleneck, α = 1/3
        w(50_000_000_000_000),     // 2: gadget-A neighbor
        w(1_666_666_666_666_666),  // 3: gadget-B neighbor
        w(10_000_000_000_000_001), // 4: gadget-B bottleneck, α = 1/3 − ~2e-16
        w(1_666_666_666_666_667),  // 5: gadget-B neighbor
    ])
    .unwrap()
}

#[test]
fn near_tie_forces_the_exact_fallback_and_stays_bit_identical() {
    let g = near_tie_ring();
    let alpha_b = ratio(3_333_333_333_333_333, 10_000_000_000_000_001);
    assert!(alpha_b < ratio(1, 3), "gadget B must be the true optimum");

    let before = stats::snapshot();
    let two_tier = decompose(&g).unwrap();
    let delta = stats::snapshot().since(&before);

    // The float tier must have proposed *something* wrong: at least one
    // certification failed and the exact descent took over.
    assert!(
        delta.fast_path_fallbacks >= 1,
        "expected the near-tie to defeat the float tier; counters: {delta:?}"
    );

    // And the fallback must land on the exact answer: gadget B first, at
    // its exact (not float-rounded) ratio, bit-identical to the reference.
    let exact = decompose_exact(&g).unwrap();
    assert_eq!(two_tier.shape(), exact.shape());
    for (p, q) in two_tier.pairs().iter().zip(exact.pairs()) {
        assert_eq!(p.alpha, q.alpha);
    }
    assert_eq!(two_tier.pairs()[0].b.to_vec(), vec![4]);
    assert_eq!(two_tier.pairs()[0].alpha, alpha_b);
    assert_eq!(two_tier.pairs()[1].alpha, ratio(1, 3));
}

/// The mirrored tie (gadget order swapped around the ring) and the exact
/// tie (both gadgets at ratio exactly 1/3, which must merge into one pair's
/// maximal bottleneck) keep the engines aligned too.
#[test]
fn exact_tie_merges_into_one_maximal_bottleneck_in_both_engines() {
    let w = |x: i64| Rational::from_integer(x);
    let g = builders::ring(vec![
        w(50),
        w(300),
        w(50), // α({1}) = 1/3
        w(25),
        w(150),
        w(25), // α({4}) = 1/3 — an *exact* tie
    ])
    .unwrap();
    let two_tier = decompose(&g).unwrap();
    let exact = decompose_exact(&g).unwrap();
    assert_eq!(two_tier.shape(), exact.shape());
    // The maximal bottleneck at α* = 1/3 contains both gadgets at once.
    assert_eq!(two_tier.pairs()[0].alpha, ratio(1, 3));
    assert!(two_tier.pairs()[0].b.contains(1) && two_tier.pairs()[0].b.contains(4));
}
