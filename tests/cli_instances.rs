//! The shipped sample instance files stay valid and analyzable.
//!
//! Uses the real library parser (`prs::parse_instance`, the same function
//! the CLI calls), so this test keeps the `instances/` directory honest at
//! the library level, mirroring what `prs <cmd> instances/<file>` does.

use prs::prelude::*;

fn load(name: &str) -> String {
    let path = format!("{}/instances/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("instance file readable")
}

fn parse(text: &str) -> Graph {
    parse_instance(text).expect("shipped instance parses")
}

#[test]
fn five_ring_is_the_quickstart_instance() {
    let g = parse(&load("five_ring.prs"));
    assert!(g.is_ring());
    let bd = decompose(&g).unwrap();
    assert_eq!(bd.utility(&g, 0), int(5));
}

#[test]
fn lower_bound_instance_reaches_its_documented_ratio() {
    let g = parse(&load("lower_bound_k6.prs"));
    assert!(g.is_ring());
    let out = best_sybil_split(&g, 1, &AttackConfig::default());
    assert!(out.ratio.to_f64() > 1.96, "ζ = {}", out.ratio.to_f64());
    assert!(out.ratio <= Rational::from_integer(2));
}

#[test]
fn figure1_instance_matches_the_paper() {
    let g = parse(&load("figure1.prs"));
    let bd = decompose(&g).unwrap();
    assert_eq!(bd.pairs()[0].alpha, ratio(1, 3));
    assert_eq!(bd.pairs()[1].alpha, Rational::one());
}

#[test]
fn star_instance_supports_general_attack() {
    let g = parse(&load("star.prs"));
    let out = prs::sybil::best_general_sybil(
        &g,
        0,
        &prs::sybil::GeneralAttackConfig::new()
            .with_grid(8)
            .with_max_copies(3),
    );
    assert!(out.ratio <= Rational::from_integer(2));
}

/// Every shipped instance decomposes identically under the two-tier
/// (float-prefiltered) engine and the single-tier exact reference — the
/// `instances/` leg of the cross-engine property suite (the randomized
/// families live in `tests/two_tier_engine.rs`).
#[test]
fn both_engines_agree_on_every_shipped_instance() {
    let dir = format!("{}/instances", env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0usize;
    for entry in std::fs::read_dir(dir).expect("instances/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("prs") {
            continue;
        }
        let g = parse(&std::fs::read_to_string(&path).expect("readable instance"));
        let two_tier = prs::bd::decompose(&g).unwrap();
        let exact = prs::bd::decompose_exact(&g).unwrap();
        assert_eq!(two_tier.shape(), exact.shape(), "shape differs on {path:?}");
        for (p, q) in two_tier.pairs().iter().zip(exact.pairs()) {
            assert_eq!(p.alpha, q.alpha, "α differs on {path:?}");
        }
        for v in 0..g.n() {
            assert_eq!(
                two_tier.class_of(v),
                exact.class_of(v),
                "class differs on {path:?}"
            );
        }
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the shipped instances, found {checked}"
    );
}
