//! Live-metrics acceptance (ISSUE 9): on a traced misreport sweep, the
//! streaming histograms' mid-run `snapshot()` must agree with the
//! post-hoc `span_stats()` aggregation — same counts and sums exactly,
//! and p50/p90/p99 within the histogram's documented relative-error
//! bound (`< 1/2^SUB_BITS`, exact below `2^SUB_BITS` ns) — for the two
//! service-critical span kinds, `bd.session_round` and
//! `flow.i128_max_flow`. The snapshot must not drain anything: the full
//! event buffer is still there for `take()` afterwards.

use prs::prelude::*;
use prs::trace;
use prs::trace::metrics;

fn ring() -> Graph {
    builders::ring(vec![int(3), int(1), int(4), int(1), int(5), int(9)]).unwrap()
}

#[test]
fn streaming_snapshot_matches_post_hoc_span_stats_within_bound() {
    trace::clear();
    metrics::reset();
    trace::enable();
    metrics::enable();

    let fam = MisreportFamily::new(ring(), 0);
    let result = sweep(&fam, &SweepConfig::new().with_grid(12).with_refine_bits(8));
    assert!(!result.intervals.is_empty(), "sweep produced no intervals");

    // Mid-run: both subsystems still enabled, nothing drained.
    let mid = metrics::snapshot();
    assert!(!mid.is_empty(), "mid-run snapshot must see live histograms");

    // More traffic after the snapshot: the histograms keep accumulating
    // (snapshot is a read, not a drain).
    let fam2 = MisreportFamily::new(ring(), 1);
    let _ = sweep(&fam2, &SweepConfig::new().with_grid(12).with_refine_bits(8));

    let live = metrics::snapshot();
    metrics::disable();
    trace::disable();
    let t = trace::take();
    assert!(
        !t.events.is_empty(),
        "snapshot() must not drain the event buffer"
    );
    assert_eq!(t.dropped, 0, "sweep overflowed the trace buffer");
    let post = t.span_stats();

    for row in &mid {
        let after = live
            .iter()
            .find(|r| (r.layer, r.name) == (row.layer, row.name))
            .expect("span kinds only accumulate");
        assert!(
            after.count >= row.count,
            "counts are monotone across snapshots"
        );
    }

    for (layer, name) in [("bd", "session_round"), ("flow", "i128_max_flow")] {
        let l = live
            .iter()
            .find(|r| (r.layer, r.name) == (layer, name))
            .unwrap_or_else(|| panic!("no live histogram for {layer}.{name}: {live:?}"));
        let p = post
            .iter()
            .find(|r| (r.layer, r.name) == (layer, name))
            .unwrap_or_else(|| panic!("no span_stats row for {layer}.{name}"));
        assert_eq!(l.count, p.count, "{layer}.{name}: counts must match");
        assert_eq!(
            l.sum_ns, p.total_ns,
            "{layer}.{name}: summed duration must match exactly"
        );
        for (q, est, exact) in [
            (50u64, l.p50_ns, p.p50_ns),
            (90, l.p90_ns, p.p90_ns),
            (99, l.p99_ns, p.p99_ns),
        ] {
            assert!(
                est <= exact,
                "{layer}.{name} p{q}: histogram returns bucket lower bounds \
                 (est {est} > exact {exact})"
            );
            // Documented bound: (exact - est) · 2^SUB_BITS ≤ exact, i.e.
            // the streaming quantile undershoots by < 1/64 relative.
            let err = exact - est;
            assert!(
                err.saturating_mul(1 << metrics::SUB_BITS) <= exact,
                "{layer}.{name} p{q}: est {est} vs exact {exact} violates the \
                 1/2^{} relative-error bound",
                metrics::SUB_BITS
            );
        }
    }
}
