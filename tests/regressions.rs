//! Directed regressions for counterexamples pinned in the checked-in
//! `.proptest-regressions` files.
//!
//! The vendored proptest shim cannot replay upstream `cc <hash>` seeds
//! (different RNG), so every pinned counterexample is additionally encoded
//! here as a plain `#[test]` that exercises the exact failing instance
//! against every property of its original suite. Keep these in sync with
//! the regression files.

use prs::prelude::{
    classify_initial_path, decompose, ratio, AttackConfig, InitialPathCase, Rational,
};
use prs::RingInstance;

/// `tests/proptest_claims.proptest-regressions`:
/// `RingInstance { weights: [11, 6, 5], pairs: 1 }`.
///
/// Runs the whole claims suite on the pinned ring, for every choice of the
/// auxiliary proptest arguments (agent `v`, misreport fraction `k/8`).
#[test]
fn ring_11_6_5_satisfies_all_claims() {
    let ring = RingInstance::from_integers(&[11, 6, 5]).expect("valid ring");

    // prop3_invariants_hold
    ring.decomposition()
        .check_proposition3(ring.graph())
        .expect("Proposition 3 invariants");

    // prop6_utilities_realized_by_allocation
    let alloc = ring.allocation();
    alloc
        .check_budget_balance(ring.graph())
        .expect("budget balance");
    for v in 0..ring.n() {
        assert_eq!(
            alloc.utility(v),
            ring.equilibrium_utility(v),
            "utility of {v}"
        );
    }

    // utility_conservation
    let total: Rational = ring.equilibrium_utilities().iter().sum();
    assert_eq!(total, ring.graph().total_weight());

    for v in 0..ring.n() {
        // lemma9_honest_split_neutral
        let (honest, split) = prs::sybil::split::lemma9_check(ring.graph(), v);
        assert_eq!(honest, split, "Lemma 9 at v={v}");

        // theorem8_ratio_at_most_two
        let out = ring.sybil_attack(
            v,
            &AttackConfig::new()
                .with_grid(10)
                .with_zoom_levels(2)
                .with_keep(2),
        );
        assert!(out.ratio >= Rational::one(), "ζ_{v} = {} < 1", out.ratio);
        assert!(
            out.ratio <= Rational::from_integer(2),
            "ζ_{v} = {} > 2",
            out.ratio
        );

        // misreporting_is_dominated
        let honest_u = ring.equilibrium_utility(v);
        for k in 1i64..8 {
            let x = ring.graph().weight(v) * &ratio(k, 8);
            let g_x = ring.graph().with_weight(v, x);
            let bd = decompose(&g_x).unwrap();
            assert!(
                bd.utility(&g_x, v) <= honest_u,
                "misreport k={k}/8 at v={v} gained"
            );
        }

        // initial_path_cases_are_total
        let rep = classify_initial_path(ring.graph(), v);
        assert!(matches!(
            rep.case,
            InitialPathCase::C1 | InitialPathCase::C2 | InitialPathCase::C3 | InitialPathCase::D1
        ));
    }

    // dynamics_converge
    let report = ring.run_dynamics(1e-4, 400_000);
    assert!(report.converged, "{report:?}");
}
