//! SoA engine vs legacy per-agent `Swarm`: bit-identical trajectories.
//!
//! `mod reference` is a verbatim re-implementation of the pre-refactor
//! per-agent engine (`AgentState` lanes + the message-routing `deliver`),
//! extended with the naive append-only membership semantics the SoA engine
//! promises (cold joins, mark-dead leaves). Every comparison is on raw
//! `f64::to_bits` — not tolerances — so any reordering of floating-point
//! operations in the flat engine shows up immediately.

use prs::p2psim::{MembershipEvent, MembershipOutcome, SoaSwarm, Strategy, Swarm};
use prs::prelude::{builders, int, parse_instance, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-refactor engine, kept as an executable specification.
mod reference {
    use prs::p2psim::Strategy;
    use prs::prelude::Graph;

    pub struct Agent {
        pub capacity: f64,
        pub peers: Vec<usize>,
        pub received: Vec<f64>,
        pub outgoing: Vec<f64>,
        pub strategy: Strategy,
    }

    impl Agent {
        fn new(capacity: f64, peers: Vec<usize>, strategy: Strategy) -> Self {
            let d = peers.len().max(1) as f64;
            let initial = match &strategy {
                Strategy::Honest => vec![capacity / d; peers.len()],
                Strategy::Sybil { w1, w2 } => vec![*w1, *w2],
                Strategy::Misreport { reported } => vec![*reported / d; peers.len()],
            };
            Agent {
                capacity,
                received: vec![0.0; peers.len()],
                outgoing: initial,
                peers,
                strategy,
            }
        }

        fn utility(&self) -> f64 {
            // `Iterator::sum` over an empty f64 slice yields -0.0; a
            // departed (peerless) agent's utility is +0.0 by definition.
            if self.received.is_empty() {
                return 0.0;
            }
            self.received.iter().sum()
        }

        fn respond(&mut self) {
            match &self.strategy {
                Strategy::Honest => self.respond_scaled(self.capacity),
                Strategy::Sybil { w1, w2 } => {
                    self.outgoing[0] = *w1;
                    self.outgoing[1] = *w2;
                }
                Strategy::Misreport { reported } => self.respond_scaled(*reported),
            }
        }

        fn respond_scaled(&mut self, effective: f64) {
            let total: f64 = self.received.iter().sum();
            if total > 0.0 {
                let scale = effective / total;
                for (out, r) in self.outgoing.iter_mut().zip(&self.received) {
                    *out = r * scale;
                }
            } else {
                let d = self.peers.len().max(1) as f64;
                for out in self.outgoing.iter_mut() {
                    *out = effective / d;
                }
            }
        }

        fn slot_of(&self, u: usize) -> usize {
            self.peers.binary_search(&u).expect("peer not in list")
        }
    }

    pub struct RefSwarm {
        pub agents: Vec<Agent>,
        prev_utilities: Vec<f64>,
    }

    impl RefSwarm {
        pub fn with_strategies(g: &Graph, strategy: impl Fn(usize) -> Strategy) -> Self {
            let w = g.weights_f64();
            let agents: Vec<Agent> = (0..g.n())
                .map(|v| Agent::new(w[v], g.neighbors(v).to_vec(), strategy(v)))
                .collect();
            let n = agents.len();
            let mut s = RefSwarm {
                agents,
                prev_utilities: vec![0.0; n],
            };
            s.deliver();
            s
        }

        fn deliver(&mut self) {
            for v in 0..self.agents.len() {
                self.prev_utilities[v] = self.agents[v].utility();
            }
            let sends: Vec<(usize, usize, f64)> = self
                .agents
                .iter()
                .enumerate()
                .flat_map(|(v, a)| {
                    a.peers
                        .iter()
                        .zip(&a.outgoing)
                        .map(move |(&u, &amt)| (v, u, amt))
                        .collect::<Vec<_>>()
                })
                .collect();
            for a in &mut self.agents {
                a.received.iter_mut().for_each(|r| *r = 0.0);
            }
            for (v, u, amt) in sends {
                let slot = self.agents[u].slot_of(v);
                self.agents[u].received[slot] += amt;
            }
        }

        pub fn step(&mut self) {
            for a in &mut self.agents {
                a.respond();
            }
            self.deliver();
        }

        pub fn utilities(&self) -> Vec<f64> {
            self.agents.iter().map(|a| a.utility()).collect()
        }

        /// Append-only join: the newcomer takes slot `agents.len()`, starts
        /// with an even split and zero receipts; peer-side lanes start cold.
        pub fn join(&mut self, capacity: f64, peers: &[usize]) -> usize {
            let v = self.agents.len();
            let mut sorted = peers.to_vec();
            sorted.sort_unstable();
            for &u in &sorted {
                let p = self.agents[u].peers.partition_point(|&x| x < v);
                self.agents[u].peers.insert(p, v);
                self.agents[u].received.insert(p, 0.0);
                self.agents[u].outgoing.insert(p, 0.0);
            }
            self.agents.push(Agent::new(capacity, sorted, Strategy::Honest));
            self.prev_utilities.push(0.0);
            v
        }

        /// Mark-dead leave: the slot stays (utility 0), neighbors drop it.
        pub fn leave(&mut self, agent: usize) {
            let peers = self.agents[agent].peers.clone();
            for u in peers {
                let p = self.agents[u].slot_of(agent);
                self.agents[u].peers.remove(p);
                self.agents[u].received.remove(p);
                self.agents[u].outgoing.remove(p);
            }
            let a = &mut self.agents[agent];
            a.peers.clear();
            a.received.clear();
            a.outgoing.clear();
            a.capacity = 0.0;
            self.prev_utilities[agent] = 0.0;
        }

        /// Mirror a rewire outcome: drop one edge, add another cold.
        pub fn rewire(&mut self, agent: usize, dropped: usize, added: usize) {
            for (a, b) in [(agent, dropped), (dropped, agent)] {
                let p = self.agents[a].slot_of(b);
                self.agents[a].peers.remove(p);
                self.agents[a].received.remove(p);
                self.agents[a].outgoing.remove(p);
            }
            for (a, b) in [(agent, added), (added, agent)] {
                let p = self.agents[a].peers.partition_point(|&x| x < b);
                self.agents[a].peers.insert(p, b);
                self.agents[a].received.insert(p, 0.0);
                self.agents[a].outgoing.insert(p, 0.0);
            }
        }
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Step both engines `rounds` times, comparing utilities and every
/// agent's send lane bit-for-bit each round.
fn assert_lockstep(soa: &mut SoaSwarm, reference: &mut reference::RefSwarm, rounds: usize) {
    for round in 0..rounds {
        assert_eq!(
            bits(&soa.utilities()),
            bits(&reference.utilities()),
            "utilities diverged at round {round}"
        );
        for v in 0..soa.n_slots() {
            assert_eq!(
                bits(soa.outgoing_of(v)),
                bits(&reference.agents[v].outgoing),
                "agent {v} send lane diverged at round {round}"
            );
            assert_eq!(
                bits(soa.received_of(v)),
                bits(&reference.agents[v].received),
                "agent {v} receive lane diverged at round {round}"
            );
        }
        soa.step();
        reference.step();
    }
}

#[test]
fn honest_random_rings_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(2024);
    for n in [4usize, 9, 17, 33, 64] {
        let g = prs::graph::random::random_ring(&mut rng, n, 1, 12);
        let mut soa = SoaSwarm::new(&g);
        let mut reference = reference::RefSwarm::with_strategies(&g, |_| Strategy::Honest);
        assert_lockstep(&mut soa, &mut reference, 60);
    }
}

#[test]
fn strategy_mix_is_bit_identical() {
    let g = builders::ring(vec![int(4), int(2), int(6), int(3), int(5), int(1)]).unwrap();
    let strat = |v: usize| match v {
        0 => Strategy::Sybil { w1: 2.5, w2: 1.5 },
        2 => Strategy::Misreport { reported: 3.5 },
        _ => Strategy::Honest,
    };
    let mut soa = SoaSwarm::with_strategies(&g, strat);
    let mut reference = reference::RefSwarm::with_strategies(&g, strat);
    assert_lockstep(&mut soa, &mut reference, 120);
}

#[test]
fn shipped_instances_are_bit_identical() {
    for name in ["figure1", "five_ring", "lower_bound_k6", "star"] {
        let text = std::fs::read_to_string(format!("instances/{name}.prs")).unwrap();
        let g: Graph = parse_instance(&text).unwrap();
        assert!(g.n() <= 64, "{name} grew beyond the small-n equivalence tier");
        let mut soa = SoaSwarm::new(&g);
        let mut reference = reference::RefSwarm::with_strategies(&g, |_| Strategy::Honest);
        assert_lockstep(&mut soa, &mut reference, 80);
    }
}

#[test]
fn facade_swarm_matches_soa_engine_exactly() {
    let g = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
    let mut facade = Swarm::new(&g);
    let mut soa = SoaSwarm::new(&g);
    for _ in 0..50 {
        assert_eq!(bits(&facade.utilities()), bits(&soa.utilities()));
        facade.step();
        soa.step();
    }
}

#[test]
fn churn_script_replays_bit_identically() {
    // Joins precede leaves so the SoA free list stays empty and slot ids
    // match the reference's append-only numbering throughout.
    let g = builders::ring(vec![int(3), int(7), int(2), int(5), int(4), int(6), int(1), int(8)])
        .unwrap();
    let mut soa = SoaSwarm::new(&g);
    let mut reference = reference::RefSwarm::with_strategies(&g, |_| Strategy::Honest);
    assert_lockstep(&mut soa, &mut reference, 5);

    // Two joins wired into opposite arcs of the ring.
    let j1 = soa
        .apply(&MembershipEvent::Join {
            capacity: 5.0,
            peers: vec![0, 3],
        })
        .unwrap();
    assert_eq!(j1, MembershipOutcome::Joined(8));
    assert_eq!(reference.join(5.0, &[0, 3]), 8);
    assert_lockstep(&mut soa, &mut reference, 4);

    let j2 = soa
        .apply(&MembershipEvent::Join {
            capacity: 2.0,
            peers: vec![8, 5],
        })
        .unwrap();
    assert_eq!(j2, MembershipOutcome::Joined(9));
    assert_eq!(reference.join(2.0, &[8, 5]), 9);
    assert_lockstep(&mut soa, &mut reference, 4);

    // A policy rewire on the SoA side, mirrored structurally on the
    // reference from the reported outcome.
    match soa.apply(&MembershipEvent::Rewire { agent: 8 }).unwrap() {
        MembershipOutcome::Rewired { dropped, added } => reference.rewire(8, dropped, added),
        MembershipOutcome::NoOp => {}
        other => panic!("unexpected rewire outcome {other:?}"),
    }
    assert_lockstep(&mut soa, &mut reference, 6);

    // Departures, including one of the newcomers.
    soa.apply(&MembershipEvent::Leave { agent: 2 }).unwrap();
    reference.leave(2);
    assert_lockstep(&mut soa, &mut reference, 4);

    soa.apply(&MembershipEvent::Leave { agent: 9 }).unwrap();
    reference.leave(9);
    assert_lockstep(&mut soa, &mut reference, 30);

    soa.check_invariants().unwrap();
}
