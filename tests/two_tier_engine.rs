//! The two-tier (float-prefiltered) decomposition engine must return
//! **bit-identical** results to the single-tier exact reference on every
//! input: the float tier only proposes a candidate optimum, an exact
//! max-flow certifies it, and any disagreement falls back to the exact
//! Dinkelbach descent (see `prs_bd::decomposition` and DESIGN.md §3.1).
//!
//! These properties exercise the claim over the families the paper cares
//! about (rings), the general-graph extensions (stars, Erdős–Rényi), and
//! rational (non-integer) weights. The directed near-tie instance that
//! *forces* the fallback lives in `tests/near_tie_fallback.rs` (its counter
//! assertions need a test binary of their own).

use proptest::prelude::*;
use prs::bd::{decompose, decompose_exact};
use prs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Both engines on `g`: same pairs, same α-ratios, same classes — or the
/// same refusal.
fn assert_engines_agree(g: &Graph) {
    match (decompose(g), decompose_exact(g)) {
        (Ok(two_tier), Ok(exact)) => {
            assert_eq!(
                two_tier.shape(),
                exact.shape(),
                "pair structure differs on weights {:?}",
                g.weights()
            );
            for (p, q) in two_tier.pairs().iter().zip(exact.pairs()) {
                assert_eq!(p.alpha, q.alpha, "α differs on weights {:?}", g.weights());
            }
            for v in 0..g.n() {
                assert_eq!(two_tier.class_of(v), exact.class_of(v));
                assert_eq!(two_tier.alpha_of(v), exact.alpha_of(v));
            }
        }
        (two_tier, exact) => {
            panic!(
                "engines disagree on decomposability: two-tier {:?}, exact {:?}",
                two_tier.map(|_| ()),
                exact.map(|_| ())
            );
        }
    }
}

fn ints(vals: &[i64]) -> Vec<Rational> {
    vals.iter().map(|&v| Rational::from_integer(v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_rings(weights in proptest::collection::vec(1i64..=40, 3..=12)) {
        let g = builders::ring(ints(&weights)).unwrap();
        assert_engines_agree(&g);
    }

    #[test]
    fn engines_agree_on_stars(weights in proptest::collection::vec(1i64..=25, 3..=10)) {
        let g = builders::star(ints(&weights)).unwrap();
        assert_engines_agree(&g);
    }

    #[test]
    fn engines_agree_on_erdos_renyi(seed in 0u64..100_000, n in 4usize..=10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = prs::graph::random::random_connected(&mut rng, n, 0.4, 1, 20);
        assert_engines_agree(&g);
    }

    #[test]
    fn engines_agree_on_rational_weight_rings(
        nums in proptest::collection::vec(1i64..=30, 3..=8),
        dens in proptest::collection::vec(1i64..=7, 8),
    ) {
        let weights: Vec<Rational> = nums
            .iter()
            .zip(&dens)
            .map(|(&p, &q)| ratio(p, q))
            .collect();
        let g = builders::ring(weights).unwrap();
        assert_engines_agree(&g);
    }
}

/// The paper's own worked example (Fig. 1) plus the ζ → 2 lower-bound
/// family: instances with known decompositions, both engines exact on them.
#[test]
fn engines_agree_on_the_papers_instances() {
    assert_engines_agree(&builders::figure1_example());
    for k in [2u32, 4, 8, 12] {
        let g = prs::sybil::theorem8::lower_bound_ring(k);
        assert_engines_agree(&g);
    }
}

/// Scale separation is the classic way to stress a float prefilter: weights
/// spanning ten orders of magnitude within one ring.
#[test]
fn engines_agree_under_extreme_scale_separation() {
    let g = builders::ring(ints(&[1, 10_000_000_000, 1, 7, 3_000_000_000, 2])).unwrap();
    assert_engines_agree(&g);
    let g = builders::star(ints(&[9_999_999_999, 1, 1, 1, 10_000_000_001])).unwrap();
    assert_engines_agree(&g);
}
