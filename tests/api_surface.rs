//! Snapshot of the public API surface.
//!
//! Every name the umbrella crate promises — at the root and in
//! `prs::prelude` — is imported here explicitly. Removing or renaming a
//! re-export breaks this file at compile time, turning silent surface
//! drift into a reviewable test failure. Additions are fine (add them
//! here when they are meant to be public).

// --- prs::prelude: the session-first working set ----------------------
#[rustfmt::skip]
use prs::prelude::{
    // High-level entry points.
    audit_paper_claims, PaperAudit, RingInstance, parse_instance, Error,
    // Decomposition engine, session-first.
    allocate, decompose, decompose_exact,
    AgentClass, Allocation, BdError, BottleneckDecomposition,
    DecompositionSession, SessionConfig, SessionPool, SessionStats,
    // Delta mutation API (ISSUE 7).
    CellMoebius, Delta, EdgeOp, ShardPool, StabilityCell, UpdateOutcome,
    // Misreport sweeps.
    classify_prop11, stability_cells, sweep,
    AlphaSample, GraphFamily, MisreportFamily, Prop11Case, ShapeInterval,
    SweepConfig, SweepResult,
    // Dynamics engines.
    ExactEngine, F64Engine,
    // Graph foundations.
    builders, Graph, GraphError, VertexId, VertexSet,
    // Numerics.
    int, ratio, BigInt, BigUint, Rational,
    // P2P simulation (struct-of-arrays core + membership, ISSUE 10).
    MembershipEvent, MembershipOutcome, SoaSwarm, Strategy, Swarm, SwarmConfig,
    // Sybil attacks.
    best_sybil_split, check_ring_theorem8, classify_initial_path,
    honest_split, worst_case_search,
    AttackConfig, GeneralAttackConfig, InitialPathCase, SybilOutcome,
};

// --- prs:: root re-exports beyond the prelude -------------------------
#[rustfmt::skip]
use prs::{
    best_general_sybil, BottleneckPair,
    // Component-crate aliases (the long tail lives here).
    bd, deviation, dynamics, eg, flow, graph, numeric, p2psim, sybil,
};

// Silence unused-import lints for the pure-type imports while keeping the
// compile-time check: mention everything once.
#[test]
fn surface_is_importable_and_coherent() {
    // Fn-item names must be function-typed.
    let _: fn(&str) -> Result<Graph, Error> = parse_instance;
    let _ = (
        audit_paper_claims,
        allocate,
        decompose,
        decompose_exact,
        classify_prop11,
        int,
        ratio,
        best_sybil_split,
        best_general_sybil,
        check_ring_theorem8,
        classify_initial_path,
        honest_split,
        worst_case_search,
    );
    let _ = sweep::<MisreportFamily>;
    let _ = stability_cells::<MisreportFamily>;

    // Type names must be type-typed (turbofish/`size_of` forces this).
    fn has_default<T: Default>() {}
    has_default::<SessionConfig>();
    has_default::<SessionStats>();
    has_default::<DecompositionSession>();
    has_default::<SweepConfig>();
    has_default::<AttackConfig>();
    has_default::<GeneralAttackConfig>();
    let _ = std::mem::size_of::<(
        PaperAudit,
        RingInstance,
        Error,
        AgentClass,
        Allocation,
        BdError,
        BottleneckDecomposition,
        BottleneckPair,
        SessionPool,
        AlphaSample,
        Prop11Case,
        ShapeInterval,
        SweepResult,
        ExactEngine,
        F64Engine,
        Graph,
        GraphError,
        VertexId,
        VertexSet,
        BigInt,
        BigUint,
        Rational,
        Strategy,
        SwarmConfig,
        InitialPathCase,
        SybilOutcome,
    )>();
    let _ = std::mem::size_of::<Swarm>();
    let _ = std::mem::size_of::<SoaSwarm>();
    let _ = std::mem::size_of::<(MembershipEvent, MembershipOutcome)>();

    // GraphFamily stays a public trait.
    fn takes_family<F: GraphFamily>(_: &F) {}
    let _ = takes_family::<MisreportFamily>;

    // Module aliases resolve.
    let _: fn(&graph::Graph) -> Result<bd::BottleneckDecomposition, bd::BdError> = bd::decompose;
    let _ = flow::stats::snapshot;

    // The unified flow kernel's vocabulary is reachable through the
    // umbrella: one generic `Network<C>`, the four backend aliases, and
    // the `Capacity`/`Cap`/`SeedArc` types.
    let _: fn(usize) -> flow::FlowNetwork = flow::Network::<numeric::Rational>::new;
    let _: fn(usize) -> flow::NetworkInt = flow::NetworkInt::new;
    let _: fn(usize) -> flow::NetworkI128 = flow::NetworkI128::new;
    let _: fn(usize) -> flow::NetworkF64 = flow::NetworkF64::new;
    let _ = std::mem::size_of::<flow::Cap>(); // defaults to the exact backend
    let _ = std::mem::size_of::<flow::CapInt>();
    let _ = std::mem::size_of::<flow::CapI128>();
    let _ = std::mem::size_of::<flow::SeedArc<numeric::BigInt>>();
    fn takes_capacity<C: flow::Capacity>() {}
    let _ = takes_capacity::<f64>;
    let _ = takes_capacity::<i128>;
    // The i128 tier's overflow handshake is public: callers bracket runs
    // with reset/detect and promote on a true answer.
    let _: fn() = flow::network_i128::reset_overflow;
    let _: fn() -> bool = flow::network_i128::overflow_detected;
    let _ = builders::ring;
    let _ = numeric::int;
    let _ = deviation::exact_breakpoints::<MisreportFamily>;
    let _ = sybil::certified_best_split;
    let _ = dynamics::F64Engine::new;
    let _ = std::mem::size_of::<eg::EgSolution>();
    let _ = std::mem::size_of::<p2psim::Swarm>();
}

// The prelude alone supports the swarm workflow: build the SoA engine
// from a graph, churn membership, run to convergence (ISSUE 10).
#[test]
fn prelude_alone_supports_the_swarm_workflow() {
    let g = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
    let mut swarm = SoaSwarm::new(&g);
    let out: MembershipOutcome = swarm
        .apply(&MembershipEvent::Join {
            capacity: 2.5,
            peers: vec![0, 2],
        })
        .unwrap();
    assert_eq!(out, MembershipOutcome::Joined(5));
    let metrics = swarm.run(&SwarmConfig::default());
    assert!(metrics.converged);
    assert_eq!(swarm.live_agents(), 6);
}

// The session-first prelude must be enough to run the quickstart without
// touching component crates.
#[test]
fn prelude_alone_supports_the_session_workflow() {
    let mut session = DecompositionSession::detached_with_config(
        SessionConfig::new()
            .with_warm_start(true)
            .with_cache_capacity(8),
    );
    let g = builders::ring(vec![int(5), int(1), int(4), int(2)]).unwrap();
    let bd = session.decompose(&g).unwrap();
    assert_eq!(bd.utilities(&g).iter().sum::<Rational>(), g.total_weight());
    let s = session.stats();
    assert_eq!(s.hits + s.misses, bd.k() as u64);
}

// The delta mutation surface (ISSUE 7): `DecompositionSession::new` owns
// its instance, `apply` routes `Delta`s through the serving tiers, and the
// vocabulary is pinned in the prelude.
#[test]
fn prelude_alone_supports_the_delta_workflow() {
    let g = builders::ring(vec![int(5), int(1), int(4), int(2)]).unwrap();
    let mut session = DecompositionSession::new(g);
    let _: &BottleneckDecomposition = session.current().unwrap();
    let out: UpdateOutcome = session
        .apply(Delta::Batch(vec![
            Delta::SetWeight { v: 0, w: int(6) },
            Delta::AddEdge { u: 0, v: 2 },
            Delta::RemoveEdge { u: 0, v: 2 },
        ]))
        .unwrap();
    assert_ne!(out, UpdateOutcome::Unchanged);
    let _ = session.update_weight(1, int(2)).unwrap();
    let _ = session.update_edge(0, 2, EdgeOp::Add).unwrap();
    // The tier vocabulary is part of the surface.
    let _ = std::mem::size_of::<(Delta, UpdateOutcome, EdgeOp, StabilityCell, CellMoebius)>();
    match out {
        UpdateOutcome::Unchanged
        | UpdateOutcome::Recertified { rounds: _ }
        | UpdateOutcome::Recomputed => {}
    }
    // Detached sessions refuse the delta API with a dedicated error.
    let mut detached = DecompositionSession::detached();
    assert!(matches!(
        detached.apply(Delta::Batch(vec![])),
        Err(BdError::DetachedSession)
    ));
    // Sharded delta queues ride the same vocabulary.
    let pool = ShardPool::new(
        vec![builders::ring(vec![int(5), int(1), int(4), int(2)]).unwrap()],
        SessionConfig::new(),
    );
    pool.enqueue(0, Delta::SetWeight { v: 0, w: int(3) });
    let drained = pool.drain(1);
    assert!(drained[0][0].is_ok());
}
