//! Cross-engine agreement tests: the same quantity computed by independent
//! implementations must coincide — mechanism vs protocol, exact vs float,
//! grid vs certified optimizer, flow vs brute-force decomposition.
//!
//! The flow-kernel modules at the bottom instantiate the shared
//! engine-parameterized Dinic suite (`prs_flow::testkit`) once per capacity
//! backend, so every kernel property — including the long-path
//! no-stack-overflow regression — is pinned for all three engines from
//! outside the crate.

use prs::prelude::*;
use prs::RingInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn four_ways_to_the_same_utilities() {
    // Closed form (Prop 6), allocation row-sums, f64 dynamics limit, and the
    // message-level swarm all agree.
    let mut rng = StdRng::seed_from_u64(77);
    let g = prs::graph::random::random_ring(&mut rng, 7, 1, 9);
    let ring = RingInstance::new(g.weights().to_vec()).unwrap();

    let closed: Vec<f64> = ring
        .equilibrium_utilities()
        .iter()
        .map(|u| u.to_f64())
        .collect();

    let alloc = ring.allocation();
    let from_alloc: Vec<f64> = (0..g.n()).map(|v| alloc.utility(v).to_f64()).collect();

    let mut engine = F64Engine::new(ring.graph());
    engine.run_until_close(&closed, 1e-10, 1_000_000);
    let from_dynamics = engine.averaged_utilities();

    let mut swarm = Swarm::new(ring.graph());
    let metrics = swarm.run(&SwarmConfig {
        max_rounds: 1_000_000,
        tol: 1e-13,
        record_trace: false,
    });

    for v in 0..g.n() {
        assert_eq!(closed[v], from_alloc[v], "closed form vs allocation at {v}");
        assert!(
            (closed[v] - from_dynamics[v]).abs() < 1e-7,
            "dynamics at {v}"
        );
        assert!(
            (closed[v] - metrics.utilities[v]).abs() < 1e-5,
            "swarm at {v}"
        );
    }
}

#[test]
fn certified_and_grid_optimizers_agree_on_the_ratio() {
    let mut rng = StdRng::seed_from_u64(88);
    for _ in 0..3 {
        let g = prs::graph::random::random_ring(&mut rng, 5, 1, 12);
        for v in 0..2 {
            let grid = best_sybil_split(
                &g,
                v,
                &AttackConfig::new()
                    .with_grid(32)
                    .with_zoom_levels(5)
                    .with_keep(3),
            );
            let cert = prs::sybil::certified_best_split(&g, v, 24, 30);
            // Certified dominates and both respect Theorem 8.
            assert!(cert.best_payoff >= grid.best.total());
            assert!(cert.ratio <= Rational::from_integer(2));
            // And the gap between the two optimizers is tiny (the grid
            // optimizer is already within a fine zoom of the optimum).
            let gap = (&cert.best_payoff - &grid.best.total()).to_f64();
            assert!(
                gap <= 0.05 * cert.honest_utility.to_f64().max(1.0),
                "optimizers disagree widely: {gap} on {:?} v={v}",
                g.weights()
            );
        }
    }
}

#[test]
fn general_split_machinery_reduces_to_ring_machinery() {
    // On a ring, the general (partition-based) attack with the {succ}/{pred}
    // partition must match the split-path attack values.
    let g = prs::graph::builders::ring(vec![int(5), int(2), int(7), int(3)]).unwrap();
    let v = 2usize;
    let w1 = ratio(7, 3);
    let w2 = &int(7) - &w1;
    // General machinery: neighbors(2) = [1, 3]; copy 0 ← neighbor 1,
    // copy 1 ← neighbor 3.
    let payoff_general =
        prs::sybil::general::attack_payoff(&g, v, &[0, 1], &[w1.clone(), w2.clone()]).unwrap();
    // Ring machinery: v1 faces successor = neighbors[0] = 1.
    let fam = prs::sybil::SybilSplitFamily::new(g, v);
    let (u1, u2) = fam.payoff(&w1).unwrap();
    assert_eq!(payoff_general, &u1 + &u2);
}

#[test]
fn exact_dynamics_certifies_float_dynamics_on_paths() {
    let g = prs::graph::builders::path(vec![int(2), int(5), int(1), int(4)]).unwrap();
    let mut exact = ExactEngine::new(&g);
    let mut float = F64Engine::new(&g);
    for round in 0..15 {
        for v in 0..g.n() {
            for &u in g.neighbors(v) {
                let e = exact.sent(v, u).to_f64();
                let f = float.sent(v, u);
                assert!(
                    (e - f).abs() < 1e-9,
                    "allocation drift at round {round}, edge ({v},{u})"
                );
            }
        }
        exact.step();
        float.step();
    }
}

mod flow_kernel_exact {
    prs_flow::engine_suite!(prs_numeric::Rational);
}

mod flow_kernel_int {
    prs_flow::engine_suite!(prs_numeric::BigInt);
}

mod flow_kernel_i128 {
    prs_flow::engine_suite!(i128);
}

mod flow_kernel_f64 {
    prs_flow::engine_suite!(f64);
}

#[test]
fn moebius_breakpoints_match_bisection_brackets() {
    let g = prs::graph::builders::ring(vec![int(6), int(2), int(4), int(3), int(5)]).unwrap();
    let fam = MisreportFamily::new(g, 0);
    let res = sweep(&fam, &SweepConfig::new().with_grid(32).with_refine_bits(24));
    let exact = prs::deviation::exact_breakpoints(&fam, &res);
    for (w, bp) in res.intervals.windows(2).zip(&exact) {
        if let Some(x) = bp {
            assert!(
                *x >= w[0].hi && *x <= w[1].lo,
                "exact breakpoint {x} outside its bisection bracket"
            );
        }
    }
}
