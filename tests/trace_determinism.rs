//! Determinism guarantees of the `prs-trace` recorder (ISSUE 4).
//!
//! Two promises, one per test half:
//!
//! * single-threaded runs export **byte-identical** JSONL once the
//!   timestamp fields are stripped (same events, same order, same
//!   attributes, worker 0 throughout);
//! * parallel sweeps are **permutation-equal**: scheduling decides which
//!   worker evaluates which point, but the multiset of deterministic
//!   payload events (the `deviation` layer: samples, refinements,
//!   breakpoints) is identical run to run after the `(worker, seq)` join.
//!
//! The recorder is process-global, so every test serializes on one lock.

use prs::prelude::*;
use prs::trace;
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn ring() -> Graph {
    builders::ring(vec![int(3), int(1), int(4), int(1), int(5), int(9)]).unwrap()
}

/// The flow-layer span vocabulary, read from the checked-in trace-name
/// registry — the single source of truth the `trace-registry` lint keeps
/// in sync with the instrumented tree (`cargo xtask registry --write`).
fn registered_flow_spans() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/trace-registry.txt");
    std::fs::read_to_string(path)
        .expect("docs/trace-registry.txt is checked in")
        .lines()
        .filter_map(|l| l.trim().strip_prefix("span flow."))
        .map(str::to_string)
        .collect()
}

/// Drop the volatile `ts_ns`/`dur_ns` fields from one JSONL line. The
/// exporter emits keys in a fixed order (`… "kind": …, "ts_ns": N,
/// "dur_ns": N, "worker": …`), so the cut points are well-defined.
fn strip_times(line: &str) -> String {
    let start = line.find("\"ts_ns\"").expect("ts_ns key present");
    let end = line.find("\"worker\"").expect("worker key present");
    format!("{}{}", &line[..start], &line[end..])
}

#[test]
fn single_threaded_jsonl_is_byte_identical_after_ts_strip() {
    let _guard = locked();
    let record_once = || {
        trace::clear();
        trace::enable();
        let g = ring();
        let bd = decompose(&g).unwrap();
        let _alloc = allocate(&g, &bd);
        trace::disable();
        trace::take().to_jsonl()
    };
    let a: Vec<String> = record_once().lines().map(strip_times).collect();
    let b: Vec<String> = record_once().lines().map(strip_times).collect();
    assert!(!a.is_empty(), "decompose+allocate recorded no events");
    assert_eq!(a, b, "single-threaded trace differs between identical runs");
    // Everything on one thread: worker 0, monotone seq.
    assert!(a.iter().all(|l| l.contains("\"worker\": 0")), "{a:?}");
    // The instrumented layers all show up.
    for needle in ["\"layer\": \"flow\"", "\"layer\": \"bd\""] {
        assert!(a.iter().any(|l| l.contains(needle)), "missing {needle}");
    }
}

#[test]
fn flow_spans_pin_engine_names_and_attrs() {
    let _guard = locked();
    // The kernel unification must not churn the trace vocabulary: the
    // flow layer emits exactly the eight per-engine span names it always
    // has, and every one carries the `engine` attribute matching its
    // prefix. Drive all four backends: a cold decompose + allocate runs
    // the f64 proposer and the exact certifier; a warm same-shape session
    // replay runs the scaled-integer certifier, which lands on the
    // checked-i128 fast tier for these small weights; a direct BigInt
    // max-flow covers the promotion target.
    trace::clear();
    trace::enable();
    let g = ring();
    let bd = decompose(&g).unwrap();
    let _alloc = allocate(&g, &bd);
    let mut session = DecompositionSession::detached();
    session.decompose(&ring()).unwrap();
    let reweighted = builders::ring(vec![int(4), int(1), int(4), int(1), int(5), int(9)]).unwrap();
    session.decompose(&reweighted).unwrap();
    let mut int_net = prs::flow::NetworkInt::new(2);
    int_net.add_edge(
        0,
        1,
        prs::flow::CapInt::Finite(prs::numeric::BigInt::from(3)),
    );
    let _ = int_net.max_flow(0, 1);
    trace::disable();
    let t = trace::take();

    let allowed = registered_flow_spans();
    assert_eq!(
        allowed.len(),
        8,
        "the registry should list the eight per-engine flow spans: {allowed:?}"
    );
    let mut seen = std::collections::BTreeSet::new();
    for e in t.events.iter().filter(|e| e.layer == "flow") {
        assert!(
            allowed.iter().any(|n| n == e.name),
            "flow-layer span name not in docs/trace-registry.txt: {}",
            e.name
        );
        seen.insert(e.name);
        let engine = e
            .attrs
            .iter()
            .find(|(k, _)| *k == "engine")
            .unwrap_or_else(|| panic!("flow span {} has no engine attr", e.name));
        let prefix = e.name.split('_').next().unwrap();
        assert_eq!(
            engine.1, prefix,
            "engine attr disagrees with span name {}",
            e.name
        );
    }
    // All four backends actually ran (cold two-tier: f64 + exact; warm
    // replay: i128 fast tier; direct run: int).
    for name in &allowed {
        assert!(
            seen.contains(name.as_str()),
            "engine span {name} never recorded"
        );
    }
}

#[test]
fn parallel_sweep_traces_are_permutation_equal() {
    let _guard = locked();
    // Which worker handles which sweep point (and therefore which session
    // cache warms up where) is scheduling-dependent, so worker-tagged
    // bookkeeping spans and `bd` cache-path attributes legitimately vary.
    // The deterministic payload — the `deviation` layer — must not.
    let record_once = || {
        trace::clear();
        trace::enable();
        let fam = MisreportFamily::new(ring(), 0);
        let result = sweep(&fam, &SweepConfig::new().with_grid(12).with_refine_bits(8));
        trace::disable();
        let t = trace::take();
        assert_eq!(t.dropped, 0, "sweep overflowed the trace buffer");
        let mut lines: Vec<String> = t
            .events
            .iter()
            .filter(|e| e.layer == "deviation")
            .map(|e| format!("{}.{} {:?} {:?}", e.layer, e.name, e.kind, e.attrs))
            .collect();
        lines.sort();
        (lines, result.intervals.len())
    };
    let (a, a_intervals) = record_once();
    let (b, b_intervals) = record_once();
    assert_eq!(
        a_intervals, b_intervals,
        "sweep itself must be deterministic"
    );
    assert!(
        a.iter().any(|l| l.contains("deviation.sample")),
        "sweep recorded no sample spans: {a:?}"
    );
    assert_eq!(a, b, "parallel sweep payload events differ between runs");
}

#[test]
fn parallel_sweep_records_worker_tagged_sections() {
    let _guard = locked();
    trace::clear();
    trace::enable();
    let fam = MisreportFamily::new(ring(), 0);
    let _result = sweep(&fam, &SweepConfig::new().with_grid(12).with_refine_bits(6));
    trace::disable();
    let t = trace::take();
    let workers: Vec<&trace::TraceEvent> = t
        .events
        .iter()
        .filter(|e| e.name == "pool_worker")
        .collect();
    assert!(
        !workers.is_empty(),
        "sweep fan-out recorded no worker spans"
    );
    for w in &workers {
        assert!(
            w.attrs.iter().any(|(k, _)| *k == "worker"),
            "pool_worker span missing worker attr: {w:?}"
        );
    }
    // Dense renumbering: worker ids drained from this run form 0..=max.
    let mut ids: Vec<u64> = t.events.iter().map(|e| e.worker).collect();
    ids.sort_unstable();
    ids.dedup();
    let expected: Vec<u64> = (0..ids.len() as u64).collect();
    assert_eq!(ids, expected, "worker ids are not dense");

    // Force a genuinely multi-threaded fan-out (independent of the core
    // count `sweep` adapts to) and check both workers' sections merge.
    trace::clear();
    trace::enable();
    let pool = SessionPool::new(SessionConfig::new());
    let _results = pool.map_indexed(8, 2, |session, i| {
        let g = builders::ring(vec![int(1 + i as i64), int(2), int(3), int(4)]).unwrap();
        session.decompose(&g).unwrap()
    });
    trace::disable();
    let t = trace::take();
    let tagged: std::collections::BTreeSet<u64> = t
        .events
        .iter()
        .filter(|e| e.name == "pool_worker")
        .map(|e| e.worker)
        .collect();
    assert_eq!(tagged.len(), 2, "expected two pool_worker sections: {t:?}");
}
