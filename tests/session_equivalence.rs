//! The tentpole's correctness contract: a [`DecompositionSession`] — warm
//! starts, shape memoization, and all — must be **bit-identical** to a cold
//! [`decompose`] call on every graph, in every order, from every cache
//! state. Sessions are allowed to change where the exact arithmetic is
//! spent, never what it computes.
//!
//! Families covered: random rings, stars, sparse Erdős–Rényi connected
//! graphs, every shipped `instances/*.prs` file, and the near-tie ring
//! from `tests/near_tie_fallback.rs` whose float tier is known to lie —
//! warm-starting must not mask the forced exact fallback there.

use prs::bd::decompose;
use prs::graph::random;
use prs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Assert a session-produced decomposition equals the cold one, field by
/// field (shape, exact α per pair, class per vertex, utilities).
fn assert_identical(g: &Graph, session: &mut DecompositionSession, label: &str) {
    let cold = decompose(g);
    let warm = session.decompose(g);
    match (cold, warm) {
        (Ok(cold), Ok(warm)) => {
            assert_eq!(cold.shape(), warm.shape(), "shape differs on {label}");
            assert_eq!(cold.k(), warm.k(), "pair count differs on {label}");
            for (p, q) in cold.pairs().iter().zip(warm.pairs()) {
                assert_eq!(p.alpha, q.alpha, "α differs on {label}");
                assert_eq!(p.b.to_vec(), q.b.to_vec(), "B differs on {label}");
                assert_eq!(p.c.to_vec(), q.c.to_vec(), "C differs on {label}");
            }
            for v in 0..g.n() {
                assert_eq!(
                    cold.class_of(v),
                    warm.class_of(v),
                    "class of {v} differs on {label}"
                );
                assert_eq!(
                    cold.utility(g, v),
                    warm.utility(g, v),
                    "utility of {v} differs on {label}"
                );
            }
        }
        (Err(ce), Err(we)) => assert_eq!(ce, we, "errors differ on {label}"),
        (cold, warm) => panic!("outcome differs on {label}: cold {cold:?} vs session {warm:?}"),
    }
}

#[test]
fn session_matches_cold_on_random_rings() {
    let mut rng = StdRng::seed_from_u64(2020);
    let mut session = DecompositionSession::detached();
    for n in [3usize, 4, 5, 6, 8, 10] {
        for trial in 0..6 {
            let g = random::random_ring(&mut rng, n, 1, 20);
            assert_identical(&g, &mut session, &format!("ring n={n} trial={trial}"));
        }
    }
    let s = session.stats();
    assert!(s.hits + s.misses > 0);
}

#[test]
fn session_matches_cold_on_stars() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut session = DecompositionSession::detached();
    for n in [4usize, 5, 7, 9] {
        for trial in 0..4 {
            let g = builders::star(random::random_weights(&mut rng, n, 1, 15)).unwrap();
            assert_identical(&g, &mut session, &format!("star n={n} trial={trial}"));
        }
    }
}

#[test]
fn session_matches_cold_on_erdos_renyi() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut session = DecompositionSession::detached();
    for n in [4usize, 6, 8] {
        for (trial, p) in [0.3, 0.5, 0.8].into_iter().enumerate() {
            let g = random::random_connected(&mut rng, n, p, 1, 12);
            assert_identical(&g, &mut session, &format!("er n={n} trial={trial}"));
        }
    }
}

#[test]
fn session_matches_cold_on_every_shipped_instance() {
    let dir = format!("{}/instances", env!("CARGO_MANIFEST_DIR"));
    let mut session = DecompositionSession::detached();
    let mut checked = 0usize;
    for entry in std::fs::read_dir(dir).expect("instances/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("prs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable instance");
        let g = parse_instance(&text).expect("shipped instance parses");
        // Twice: once populating the cache, once re-entering the cached
        // shape (the second call exercises the warm-hit path on the same
        // graph).
        assert_identical(&g, &mut session, &format!("{path:?} (cold cache)"));
        assert_identical(&g, &mut session, &format!("{path:?} (warm cache)"));
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the shipped instances, got {checked}"
    );
}

/// The near-tie ring from `tests/near_tie_fallback.rs`: the float tier
/// proposes the wrong bottleneck and the engine must fall back to exact
/// descent. A warm-started session must reach the same (correct) answer —
/// caching must never let a stale shape survive certification.
#[test]
fn session_matches_cold_on_near_tie_fallback_ring() {
    let w = |x: i64| Rational::from_integer(x);
    let g = builders::ring(vec![
        w(50_000_000_000_000),
        w(300_000_000_000_000),
        w(50_000_000_000_000),
        w(1_666_666_666_666_666),
        w(10_000_000_000_000_001),
        w(1_666_666_666_666_667),
    ])
    .unwrap();

    let mut session = DecompositionSession::detached();
    // Prime the cache with a *nearby* ring whose optimal bottleneck is the
    // gadget-A vertex {1}, so the session warm-starts the near-tie ring
    // from a plausible-but-wrong shape and must recover via certification.
    let decoy = builders::ring(vec![
        w(50_000_000_000_000),
        w(300_000_000_000_000),
        w(50_000_000_000_000),
        w(2_000_000_000_000_000),
        w(10_000_000_000_000_001),
        w(2_000_000_000_000_000),
    ])
    .unwrap();
    session.decompose(&decoy).unwrap();

    assert_identical(&g, &mut session, "near-tie ring (decoy-primed)");
    assert_identical(&g, &mut session, "near-tie ring (self-primed)");
    let bd = session.decompose(&g).unwrap();
    assert_eq!(
        bd.pairs()[0].b.to_vec(),
        vec![4],
        "true bottleneck is {{4}}"
    );
}

/// A sweep-like sequence: one session serving a whole one-parameter family
/// in grid order, then revisiting interleaved points out of order — the
/// memoized shapes from the first pass serve the second.
#[test]
fn shared_session_sweep_sequence_is_bit_identical() {
    let fam_ring = builders::ring(vec![int(5), int(1), int(4), int(2), int(3)]).unwrap();
    let fam = MisreportFamily::new(fam_ring, 0);
    let (lo, hi) = fam.domain();
    let span = &hi - &lo;
    let grid = 24usize;
    let xs: Vec<Rational> = (1..grid)
        .map(|k| &lo + &(&span * &ratio(k as i64, grid as i64)))
        .collect();

    let mut session = DecompositionSession::detached();
    for x in xs.iter().chain(xs.iter().rev().step_by(3)) {
        let g = fam.graph_at(x);
        assert_identical(&g, &mut session, &format!("misreport x={x}"));
    }
    let s = session.stats();
    assert!(s.hits > 0, "a dense sweep must produce warm hits: {s:?}");
    assert!(s.warm_starts >= s.hits, "warm_starts ≥ hits: {s:?}");
}

/// Counter sanity on the public API: monotone, and hits+misses accounts
/// every decomposition round the session ever served.
#[test]
fn session_counters_are_monotone_over_a_mixed_workload() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut session = DecompositionSession::detached();
    let mut prev = session.stats();
    let mut rounds_served = 0u64;
    for n in [3usize, 5, 4, 5, 3] {
        let g = random::random_ring(&mut rng, n, 1, 9);
        let bd = session.decompose(&g).unwrap();
        rounds_served += bd.k() as u64;
        let s = session.stats();
        assert!(s.hits >= prev.hits && s.misses >= prev.misses);
        assert!(s.warm_starts >= prev.warm_starts);
        assert_eq!(s.hits + s.misses, rounds_served);
        prev = s;
    }
}
