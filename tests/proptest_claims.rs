//! Property-based tests of the paper's claims over randomized rings.

use proptest::prelude::*;
#[allow(unused_imports)]
use prs::prelude::{
    classify_initial_path, decompose, ratio, AttackConfig, InitialPathCase, Rational,
};
use prs::RingInstance;

/// Strategy: a ring of 3..=7 agents with integer weights 1..=12.
fn arb_ring() -> impl Strategy<Value = RingInstance> {
    proptest::collection::vec(1i64..=12, 3..=7)
        .prop_map(|w| RingInstance::from_integers(&w).expect("valid ring"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop3_invariants_hold(ring in arb_ring()) {
        prop_assert!(ring.decomposition().check_proposition3(ring.graph()).is_ok());
    }

    #[test]
    fn prop6_utilities_realized_by_allocation(ring in arb_ring()) {
        let alloc = ring.allocation();
        prop_assert!(alloc.check_budget_balance(ring.graph()).is_ok());
        for v in 0..ring.n() {
            prop_assert_eq!(alloc.utility(v), ring.equilibrium_utility(v));
        }
    }

    #[test]
    fn utility_conservation(ring in arb_ring()) {
        let total: Rational = ring.equilibrium_utilities().iter().sum();
        prop_assert_eq!(total, ring.graph().total_weight());
    }

    #[test]
    fn lemma9_honest_split_neutral(ring in arb_ring(), v_raw in 0usize..7) {
        let v = v_raw % ring.n();
        let (honest, split) = prs::sybil::split::lemma9_check(ring.graph(), v);
        prop_assert_eq!(honest, split);
    }

    #[test]
    fn theorem8_ratio_at_most_two(ring in arb_ring(), v_raw in 0usize..7) {
        let v = v_raw % ring.n();
        let out = ring.sybil_attack(v, &AttackConfig::new().with_grid(10).with_zoom_levels(2).with_keep(2));
        prop_assert!(out.ratio >= Rational::one());
        prop_assert!(out.ratio <= Rational::from_integer(2),
            "ζ_{} = {} on {:?}", v, out.ratio, ring.graph().weights());
    }

    #[test]
    fn misreporting_is_dominated(ring in arb_ring(), v_raw in 0usize..7, k in 1i64..8) {
        let v = v_raw % ring.n();
        let honest = ring.equilibrium_utility(v);
        let x = &(ring.graph().weight(v) * &ratio(k, 8));
        let g_x = ring.graph().with_weight(v, x.clone());
        let bd = decompose(&g_x).unwrap();
        prop_assert!(bd.utility(&g_x, v) <= honest);
    }

    #[test]
    fn initial_path_cases_are_total(ring in arb_ring(), v_raw in 0usize..7) {
        // classify_initial_path asserts the Lemma 14 / 20 structure
        // internally; reaching here without a panic is the property.
        let v = v_raw % ring.n();
        let rep = classify_initial_path(ring.graph(), v);
        prop_assert!(matches!(
            rep.case,
            InitialPathCase::C1 | InitialPathCase::C2 | InitialPathCase::C3 | InitialPathCase::D1
        ));
    }

    #[test]
    fn dynamics_converge(ring in arb_ring()) {
        // Wu–Zhang guarantee convergence but not a rate; near-degenerate
        // instances (e.g. α-ratios at or near 1) converge sublinearly, so
        // the property asserts a modest tolerance within a bounded horizon.
        let report = ring.run_dynamics(1e-4, 400_000);
        prop_assert!(report.converged, "{:?} on {:?}", report, ring.graph().weights());
    }
}
