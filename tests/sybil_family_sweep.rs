//! The deviation machinery applied to the *Sybil split family*: the same
//! sweep / Möbius / Prop-12 toolchain that analyzes misreports also
//! analyzes the two-endpoint family `P_v(w₁, w_v − w₁)` — this is exactly
//! how the paper's §III analysis composes, and these tests exercise that
//! composition end-to-end.

use prs::prelude::*;
use prs::sybil::SybilSplitFamily;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn split_family_sweep_intervals_cover_the_domain() {
    let mut rng = StdRng::seed_from_u64(7001);
    let g = prs::graph::random::random_ring(&mut rng, 6, 1, 10);
    let fam = SybilSplitFamily::new(g.clone(), 2);
    let res = sweep(&fam, &SweepConfig::new().with_grid(32).with_refine_bits(20));
    // Interval chain is ordered and spans (0, w_v) up to boundary skips.
    assert!(!res.intervals.is_empty());
    for w in res.intervals.windows(2) {
        assert!(w[0].hi <= w[1].lo);
    }
    let first = &res.intervals.first().unwrap().lo;
    let last = &res.intervals.last().unwrap().hi;
    assert!(first <= &(g.weight(2) * &ratio(1, 8)));
    assert!(last >= &(g.weight(2) * &ratio(7, 8)));
}

#[test]
fn split_family_moebius_models_verify() {
    let mut rng = StdRng::seed_from_u64(7002);
    for _ in 0..3 {
        let g = prs::graph::random::random_ring(&mut rng, 5, 1, 9);
        let fam = SybilSplitFamily::new(g.clone(), 0);
        let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(18));
        for iv in &res.intervals {
            prs::deviation::moebius::verify_interval(&fam, iv)
                .unwrap_or_else(|e| panic!("{e} on {:?}", g.weights()));
        }
    }
}

#[test]
fn split_family_breakpoints_bracket_exact_solutions() {
    let g = prs::sybil::theorem8::lower_bound_ring(3);
    let fam = SybilSplitFamily::new(g, prs::sybil::theorem8::LOWER_BOUND_AGENT);
    let res = sweep(&fam, &SweepConfig::new().with_grid(48).with_refine_bits(24));
    let exact = prs::deviation::exact_breakpoints(&fam, &res);
    for (w, bp) in res.intervals.windows(2).zip(&exact) {
        if let Some(x) = bp {
            assert!(
                *x >= w[0].hi && *x <= w[1].lo,
                "breakpoint {x} escaped its bracket"
            );
        }
    }
}

#[test]
fn split_family_classes_follow_prop12_discipline() {
    // Class flips along the split parameter must obey the same discipline
    // as misreport sweeps: preserved, or through Both / an exact α = 1
    // junction.
    let mut rng = StdRng::seed_from_u64(7003);
    let g = prs::graph::random::random_ring(&mut rng, 6, 1, 12);
    let fam = SybilSplitFamily::new(g.clone(), 1);
    let res = sweep(&fam, &SweepConfig::new().with_grid(32).with_refine_bits(20));
    for e in prs::deviation::classify_events(&fam, &res) {
        assert!(
            e.focus_class_preserved,
            "class discipline violated: {e:?} on {:?}",
            g.weights()
        );
    }
}

#[test]
fn certified_optimizer_consistent_with_family_sweep() {
    // The certified optimizer's interval count must match a fresh sweep at
    // the same resolution (both derive from the same machinery).
    let mut rng = StdRng::seed_from_u64(7004);
    let g = prs::graph::random::random_ring(&mut rng, 5, 1, 10);
    let cert = prs::sybil::certified_best_split(&g, 0, 24, 25);
    let fam = SybilSplitFamily::new(g, 0);
    let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(25));
    assert_eq!(cert.intervals, res.intervals.len());
    assert!(cert.ratio >= Rational::one());
}
