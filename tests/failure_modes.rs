//! Failure injection: the library must reject degenerate inputs with
//! typed errors rather than wrong answers.

use prs::prelude::*;

#[test]
fn graph_construction_rejections() {
    use prs::graph::GraphError;
    // Self-loop.
    assert!(matches!(
        Graph::new(vec![int(1), int(2)], &[(0, 0)]),
        Err(GraphError::SelfLoop { .. })
    ));
    // Duplicate edge (either orientation).
    assert!(matches!(
        Graph::new(vec![int(1), int(2)], &[(0, 1), (1, 0)]),
        Err(GraphError::DuplicateEdge { .. })
    ));
    // Out-of-range endpoint.
    assert!(matches!(
        Graph::new(vec![int(1)], &[(0, 3)]),
        Err(GraphError::VertexOutOfRange { .. })
    ));
    // Negative weight.
    assert!(matches!(
        Graph::new(vec![ratio(-1, 2)], &[]),
        Err(GraphError::NegativeWeight { .. })
    ));
    // Rings need ≥ 3 vertices.
    assert!(builders::ring(vec![int(1), int(2)]).is_err());
}

#[test]
fn decomposition_rejections() {
    use prs::bd::BdError;
    // Empty graph.
    let empty = Graph::new(vec![], &[]).unwrap();
    assert_eq!(decompose(&empty), Err(BdError::EmptyGraph));
    // Isolated positive-weight agent → α = 0.
    let isolated = Graph::new(vec![int(1), int(1), int(1)], &[(0, 1)]).unwrap();
    assert!(matches!(
        decompose(&isolated),
        Err(BdError::ZeroAlpha { .. })
    ));
    // All-zero weights → undefined α everywhere.
    let zeros = Graph::new(vec![int(0), int(0)], &[(0, 1)]).unwrap();
    assert!(matches!(
        decompose(&zeros),
        Err(BdError::ZeroWeightResidue { .. })
    ));
}

#[test]
fn degenerate_split_boundaries_are_graceful() {
    // w1 = 0 at a split is a legitimate boundary (Case C-2); the machinery
    // must handle it without panicking.
    let g = builders::ring(vec![int(4), int(2), int(3)]).unwrap();
    let fam = prs::sybil::split::SybilSplitFamily::new(g, 0);
    let payoff = fam.payoff(&Rational::zero());
    if let Some((u1, u2)) = payoff {
        assert_eq!(u1, Rational::zero(), "weightless identity earns nothing");
        assert!(u2.is_positive());
    }
}

#[test]
fn zero_weight_agent_on_ring_is_supported() {
    // A ring agent reporting 0 keeps the instance decomposable (its
    // neighbors still have each other).
    let g = builders::ring(vec![int(0), int(2), int(3), int(4)]).unwrap();
    let bd = decompose(&g).unwrap();
    assert_eq!(bd.utility(&g, 0), Rational::zero());
    let alloc = allocate(&g, &bd);
    alloc.check_budget_balance(&g).unwrap();
}

#[test]
fn swarm_with_zero_capacity_agent() {
    let g = builders::ring(vec![int(0), int(2), int(3), int(4)]).unwrap();
    let mut swarm = Swarm::new(&g);
    let m = swarm.run(&SwarmConfig {
        max_rounds: 20_000,
        tol: 1e-9,
        record_trace: false,
    });
    assert!(m.converged);
    assert!(
        m.utilities[0].abs() < 1e-9,
        "free riders download nothing at the fixed point"
    );
}

#[test]
fn attack_on_tiny_triangle() {
    // Smallest possible ring; boundary splits hit degenerate paths and must
    // be skipped, not crashed on.
    let ring = prs::RingInstance::from_integers(&[1, 1, 1]).unwrap();
    let out = ring.sybil_attack(
        0,
        &AttackConfig::new()
            .with_grid(8)
            .with_zoom_levels(2)
            .with_keep(2),
    );
    assert_eq!(out.ratio, Rational::one());
}
