//! Failure injection: the library must reject degenerate inputs with
//! typed errors rather than wrong answers.

use prs::prelude::*;

#[test]
fn graph_construction_rejections() {
    use prs::graph::GraphError;
    // Self-loop.
    assert!(matches!(
        Graph::new(vec![int(1), int(2)], &[(0, 0)]),
        Err(GraphError::SelfLoop { .. })
    ));
    // Duplicate edge (either orientation).
    assert!(matches!(
        Graph::new(vec![int(1), int(2)], &[(0, 1), (1, 0)]),
        Err(GraphError::DuplicateEdge { .. })
    ));
    // Out-of-range endpoint.
    assert!(matches!(
        Graph::new(vec![int(1)], &[(0, 3)]),
        Err(GraphError::VertexOutOfRange { .. })
    ));
    // Negative weight.
    assert!(matches!(
        Graph::new(vec![ratio(-1, 2)], &[]),
        Err(GraphError::NegativeWeight { .. })
    ));
    // Rings need ≥ 3 vertices.
    assert!(builders::ring(vec![int(1), int(2)]).is_err());
}

#[test]
fn decomposition_rejections() {
    use prs::bd::BdError;
    // Empty graph.
    let empty = Graph::new(vec![], &[]).unwrap();
    assert_eq!(decompose(&empty), Err(BdError::EmptyGraph));
    // Isolated positive-weight agent → α = 0.
    let isolated = Graph::new(vec![int(1), int(1), int(1)], &[(0, 1)]).unwrap();
    assert!(matches!(
        decompose(&isolated),
        Err(BdError::ZeroAlpha { .. })
    ));
    // All-zero weights → undefined α everywhere.
    let zeros = Graph::new(vec![int(0), int(0)], &[(0, 1)]).unwrap();
    assert!(matches!(
        decompose(&zeros),
        Err(BdError::ZeroWeightResidue { .. })
    ));
}

#[test]
fn degenerate_split_boundaries_are_graceful() {
    // w1 = 0 at a split is a legitimate boundary (Case C-2); the machinery
    // must handle it without panicking.
    let g = builders::ring(vec![int(4), int(2), int(3)]).unwrap();
    let fam = prs::sybil::split::SybilSplitFamily::new(g, 0);
    let payoff = fam.payoff(&Rational::zero());
    if let Some((u1, u2)) = payoff {
        assert_eq!(u1, Rational::zero(), "weightless identity earns nothing");
        assert!(u2.is_positive());
    }
}

#[test]
fn zero_weight_agent_on_ring_is_supported() {
    // A ring agent reporting 0 keeps the instance decomposable (its
    // neighbors still have each other).
    let g = builders::ring(vec![int(0), int(2), int(3), int(4)]).unwrap();
    let bd = decompose(&g).unwrap();
    assert_eq!(bd.utility(&g, 0), Rational::zero());
    let alloc = allocate(&g, &bd);
    alloc.check_budget_balance(&g).unwrap();
}

#[test]
fn swarm_with_zero_capacity_agent() {
    let g = builders::ring(vec![int(0), int(2), int(3), int(4)]).unwrap();
    let mut swarm = Swarm::new(&g);
    let m = swarm.run(&SwarmConfig {
        max_rounds: 20_000,
        tol: 1e-9,
        record_trace: false,
    });
    assert!(m.converged);
    assert!(
        m.utilities[0].abs() < 1e-9,
        "free riders download nothing at the fixed point"
    );
}

#[test]
fn ring_instance_rejects_non_positive_weights() {
    // The attack surface requires w > 0; `RingInstance` must reject bad
    // weights at construction with a typed error naming the vertex, not
    // panic deep inside the sweep.
    let zero = prs::RingInstance::from_integers(&[3, 0, 2]);
    let err = zero.expect_err("zero weight must be rejected");
    assert!(
        err.to_string().contains("non-positive weight at vertex 1"),
        "unhelpful error: {err}"
    );
    let negative = prs::RingInstance::new(vec![int(1), int(2), ratio(-1, 3)]);
    let err = negative.expect_err("negative weight must be rejected");
    assert!(err.to_string().contains("vertex 2"), "{err}");
    // Strictly positive rationals are still fine.
    assert!(prs::RingInstance::new(vec![ratio(1, 7), int(2), int(3)]).is_ok());
}

#[test]
fn malformed_instance_text_is_rejected() {
    use prs::Error;
    // Truncated and garbage inputs must come back as typed parse errors
    // (never a panic), carrying a usable line number.
    let cases: &[&str] = &[
        "",                                                  // empty file
        "ring",                                              // truncated: no weights line
        "ring\nweights:",                                    // empty weight list → builder error
        "ring\nweights: 1 2 1/0",                            // zero denominator
        "ring\nweights: 1 2 NaN",                            // float junk
        "graph\nweights: 1 2\nedges: 0-9",                   // endpoint out of range
        "graph\nweights: 1 2\nedges: 0-",                    // truncated edge token
        "\u{0}\u{1}binary\u{2}garbage",                      // binary noise
        "ring\nweights: 1 2 3\nweights: 1 2 3\nextra: nope", // trailing junk
    ];
    for text in cases {
        match prs::parse_instance(text) {
            Err(Error::Parse { .. }) => {}
            Err(other) => panic!("expected Parse error for {text:?}, got {other:?}"),
            Ok(_) => panic!("malformed input parsed: {text:?}"),
        }
    }
    // Line numbers point at the offending line.
    match prs::parse_instance("ring\nweights: 1 oops 3") {
        Err(Error::Parse { line, message }) => {
            assert_eq!(line, 2);
            assert!(message.contains("oops"), "{message}");
        }
        other => panic!("expected a located parse error, got {other:?}"),
    }
}

#[test]
fn attack_on_tiny_triangle() {
    // Smallest possible ring; boundary splits hit degenerate paths and must
    // be skipped, not crashed on.
    let ring = prs::RingInstance::from_integers(&[1, 1, 1]).unwrap();
    let out = ring.sybil_attack(
        0,
        &AttackConfig::new()
            .with_grid(8)
            .with_zoom_levels(2)
            .with_keep(2),
    );
    assert_eq!(out.ratio, Rational::one());
}
