//! End-to-end pipeline tests across crates: graph → decomposition →
//! allocation → dynamics → swarm, all agreeing on random instances.

use prs::prelude::*;
use prs::RingInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_pipeline_on_random_rings() {
    let mut rng = StdRng::seed_from_u64(1001);
    for n in [3usize, 5, 8, 12] {
        let g = prs_random_ring(&mut rng, n);
        let ring = RingInstance::new(g.weights().to_vec()).unwrap();

        // Decomposition invariants.
        ring.decomposition()
            .check_proposition3(ring.graph())
            .unwrap();

        // Allocation realizes Proposition 6 exactly.
        let alloc = ring.allocation();
        alloc.check_budget_balance(ring.graph()).unwrap();
        for v in 0..n {
            assert_eq!(alloc.utility(v), ring.equilibrium_utility(v));
        }

        // Distributed protocol reaches the same fixed point.
        let report = ring.run_dynamics(1e-8, 300_000);
        assert!(report.converged, "dynamics failed on {:?}", g.weights());

        // Message-level swarm agrees with everything above. (The swarm's
        // stop rule is movement-based, so use a tolerance well below the
        // distance we assert: slow geometric rates otherwise stop early.)
        let mut swarm = Swarm::new(ring.graph());
        let m = swarm.run(&SwarmConfig {
            max_rounds: 2_000_000,
            tol: 1e-13,
            record_trace: false,
        });
        assert!(m.converged);
        for (v, want) in ring.equilibrium_utilities().iter().enumerate() {
            assert!(
                (m.utilities[v] - want.to_f64()).abs() < 1e-5,
                "swarm disagrees at {v} on {:?}",
                g.weights()
            );
        }
    }
}

#[test]
fn exact_engine_certifies_f64_engine() {
    let mut rng = StdRng::seed_from_u64(1002);
    let g = prs_random_ring(&mut rng, 6);
    let mut exact = ExactEngine::new(&g);
    let mut fast = F64Engine::new(&g);
    for _ in 0..10 {
        exact.step();
        fast.step();
    }
    for v in 0..g.n() {
        assert!(
            (exact.utilities()[v].to_f64() - fast.utilities()[v]).abs() < 1e-9,
            "engines diverged at {v}"
        );
    }
}

#[test]
fn bd_allocation_is_dynamics_fixed_point_end_to_end() {
    let mut rng = StdRng::seed_from_u64(1003);
    for _ in 0..5 {
        let g = prs_random_ring(&mut rng, 7);
        let bd = decompose(&g).unwrap();
        let alloc = allocate(&g, &bd);
        let mut engine = ExactEngine::with_allocation(&g, &alloc);
        engine.step();
        for v in 0..g.n() {
            for &u in g.neighbors(v) {
                assert_eq!(engine.sent(v, u), alloc.sent(v, u));
            }
        }
    }
}

#[test]
fn misreport_never_beats_honesty_end_to_end() {
    // Theorem 10 corollary at pipeline level: truthfulness of the mechanism
    // under weight misreporting.
    let mut rng = StdRng::seed_from_u64(1004);
    let g = prs_random_ring(&mut rng, 6);
    let bd = decompose(&g).unwrap();
    for v in 0..g.n() {
        let honest = bd.utility(&g, v);
        for k in 1..6 {
            let x = &(g.weight(v) * &ratio(k, 6));
            let g_x = g.with_weight(v, x.clone());
            let bd_x = decompose(&g_x).unwrap();
            assert!(bd_x.utility(&g_x, v) <= honest);
        }
    }
}

/// Deterministic random ring helper (weights 1..=20).
fn prs_random_ring(rng: &mut StdRng, n: usize) -> Graph {
    prs::graph::random::random_ring(rng, n, 1, 20)
}
