//! Umbrella crate: re-exports the full `prs-core` API.
//!
//! See the README for the architecture overview and `prs_core` for the
//! component documentation. The repo-root `examples/` and `tests/` belong
//! to this crate.

pub use prs_core::*;
