//! Umbrella crate: the curated public surface of the `prs` stack.
//!
//! See the README for the architecture overview and [`prs_core`] for the
//! component documentation. The repo-root `examples/` and `tests/` belong
//! to this crate.
//!
//! Two ways in:
//!
//! * `use prs::prelude::*;` — the session-first working set: a
//!   [`DecompositionSession`] (or a [`SessionPool`] for parallel sweeps)
//!   plus the analyses built on top of it.
//! * `prs::bd`, `prs::flow`, … — the component crates under stable names,
//!   for anything not re-exported at the root.
//!
//! The old `pub use prs_core::*` glob is gone; everything below is an
//! explicit, intentional re-export. `tests/api_surface.rs` snapshots this
//! surface so accidental removals fail CI.

// High-level entry points.
pub use prs_core::audit::{audit_paper_claims, PaperAudit};
pub use prs_core::parse::parse_instance;
pub use prs_core::{Error, RingInstance};

// The decomposition engine, session-first.
pub use prs_core::bd::{
    allocate, decompose, decompose_exact, AgentClass, Allocation, BdError, BottleneckDecomposition,
    BottleneckPair, CellMoebius, DecompositionSession, Delta, EdgeOp, SessionConfig, SessionPool,
    SessionStats, ShardPool, StabilityCell, UpdateOutcome,
};

// Misreport sweeps and Sybil attacks.
pub use prs_core::deviation::{
    classify_prop11, stability_cells, sweep, AlphaSample, GraphFamily, MisreportFamily, Prop11Case,
    ShapeInterval, SweepConfig, SweepResult,
};
pub use prs_core::sybil::{
    best_general_sybil, best_sybil_split, check_ring_theorem8, classify_initial_path, honest_split,
    worst_case_search, AttackConfig, GeneralAttackConfig, InitialPathCase, SybilOutcome,
};

// Foundations.
pub use prs_core::graph::{builders, Graph, GraphError, VertexId, VertexSet};
pub use prs_core::numeric::{int, ratio, BigInt, BigUint, Rational};

/// Convenient glob-import surface (same set as [`prs_core::prelude`]).
pub mod prelude {
    pub use prs_core::prelude::*;
}

// The component crates under stable names, for the long tail
// (`prs::flow::stats`, `prs::bd::reference`, `prs::graph::random`, …).
pub use prs_core::{bd, deviation, dynamics, eg, flow, graph, numeric, p2psim, sybil, trace};
