//! Protocol-level view: a BitTorrent-style swarm with a Sybil attacker.
//!
//! ```text
//! cargo run --example p2p_swarm
//! ```
//!
//! Runs the message-level proportional response protocol on a ring swarm,
//! first with everyone honest, then with agent 0 mounting its optimal Sybil
//! attack *inside the protocol* (one fictitious identity per neighbor).
//! The attacker's long-run download improves by at most 2× — Theorem 8
//! observed at the protocol level rather than the mechanism level.

use prs::prelude::*;
use prs::RingInstance;

fn main() {
    let ring = RingInstance::from_integers(&[6, 1, 4, 2, 5]).expect("valid ring");
    let g = ring.graph();
    println!("swarm topology: ring, weights {:?}", g.weights());

    // Honest swarm.
    let mut honest_swarm = Swarm::new(g);
    let honest = honest_swarm.run(&SwarmConfig::default());
    println!(
        "\nhonest swarm: converged in {} rounds; utilities {:?}",
        honest.rounds,
        honest
            .utilities
            .iter()
            .map(|u| format!("{u:.4}"))
            .collect::<Vec<_>>()
    );

    // Verify against the closed form (Proposition 6).
    for (v, want) in ring.equilibrium_utilities().iter().enumerate() {
        let got = honest.utilities[v];
        assert!(
            (got - want.to_f64()).abs() < 1e-6,
            "protocol disagrees with the BD equilibrium at agent {v}"
        );
    }
    println!("protocol utilities match the Proposition 6 closed form ✓");

    // Attacker: agent 0 plays its optimal split, found by the exact
    // mechanism-level optimizer.
    let attacker = 0usize;
    let out = ring.sybil_attack(attacker, &AttackConfig::default());
    let w1 = out.best.w1.to_f64();
    let w2 = g.weight(attacker).to_f64() - w1;
    println!("\nagent {attacker} attacks with identities (w1, w2) = ({w1:.4}, {w2:.4})");

    let mut sybil_swarm = Swarm::with_strategies(g, |a| {
        if a == attacker {
            Strategy::Sybil { w1, w2 }
        } else {
            Strategy::Honest
        }
    });
    let attacked = sybil_swarm.run(&SwarmConfig::default());
    let honest_u = honest.utilities[attacker];
    let sybil_u = attacked.utilities[attacker];
    println!(
        "attacked swarm: converged in {} rounds; attacker download {:.4} (honest {:.4})",
        attacked.rounds, sybil_u, honest_u
    );
    println!(
        "protocol-level gain: {:.4}×  (mechanism-level ζ_0 = {:.4}; Theorem 8 cap: 2)",
        sybil_u / honest_u,
        out.ratio_f64()
    );

    // Collateral: who pays for the attacker's gain?
    println!("\nper-agent effect of the attack:");
    for v in 0..g.n() {
        let delta = attacked.utilities[v] - honest.utilities[v];
        println!(
            "  agent {v}: {:.4} → {:.4}  ({}{:.4})",
            honest.utilities[v],
            attacked.utilities[v],
            if delta >= 0.0 { "+" } else { "" },
            delta
        );
    }
}
