//! Hunting the worst case: how close to ζ = 2 can a ring get?
//!
//! ```text
//! cargo run --release --example worst_case_hunt
//! ```
//!
//! Three stages, mirroring experiment E11's lower-bound half:
//! 1. randomized worst-case search over ring weights (parallel restarts),
//! 2. the parameterized `lower_bound_ring(k)` family the search uncovered,
//! 3. the certified (symbolic per-interval) optimizer pinning each family
//!    member's exact attack value — marching toward the tight bound of 2
//!    without ever crossing it.

use prs::prelude::*;
use prs::sybil::certified_best_split;
use prs::sybil::theorem8::{lower_bound_ring, LOWER_BOUND_AGENT};

fn main() {
    let cfg = AttackConfig::new()
        .with_grid(32)
        .with_zoom_levels(5)
        .with_keep(3);

    // Stage 1: blind search.
    println!("stage 1 — randomized worst-case search (n = 5, 16 restarts):");
    let rep = worst_case_search(5, 16, 3, 2020, &cfg, 8);
    println!(
        "  best ζ found: {:.6} at weights {:?} (agent {})",
        rep.best_ratio.to_f64(),
        rep.best_weights
            .iter()
            .map(|w| w.to_f64())
            .collect::<Vec<_>>(),
        rep.best_vertex
    );
    println!(
        "  {} attacks evaluated; upper bound 2 held throughout: {}",
        rep.attacks_evaluated, rep.upper_bound_holds
    );

    // Stage 2 + 3: the parameterized family, certified.
    println!("\nstage 2 — the lower-bound family ring(2⁻ᵏ, 1, 1, 2ᵏ, 2⁻ᵏ), agent 1:");
    println!("  k | certified ζ | gap to 2");
    for k in [2u32, 4, 6, 8, 10, 12] {
        let g = lower_bound_ring(k);
        let cert = certified_best_split(&g, LOWER_BOUND_AGENT, 32, 35);
        assert!(
            cert.ratio <= Rational::from_integer(2),
            "Theorem 8 violated!"
        );
        let gap = 2.0 - cert.ratio.to_f64();
        println!(
            "  {k:>2} | {:.8} | {:.2e}   (best split w1 = {})",
            cert.ratio.to_f64(),
            gap,
            cert.best_w1
        );
    }
    println!("\nζ approaches 2 from below and never crosses it — Theorem 8 is tight.");
}
