//! Three independent derivations of the sharing equilibrium, side by side.
//!
//! ```text
//! cargo run --release --example three_derivations
//! ```
//!
//! 1. **Combinatorial** — the BD Allocation Mechanism (Definition 5):
//!    bottleneck decomposition + per-pair max-flows, exact rationals.
//! 2. **Distributed** — the proportional response protocol (Definition 1):
//!    agents exchanging messages, no global computation.
//! 3. **Convex-programmatic** — the Eisenberg–Gale program
//!    `max Σ w_v log U_v` solved by mirror descent, knowing nothing about
//!    bottlenecks.
//!
//! All three agree — the equivalence behind Proposition 6.

use prs::prelude::*;
use prs::RingInstance;
use prs_core::eg::{solve, EgConfig};

fn main() {
    let ring = RingInstance::from_integers(&[4, 1, 7, 2, 5, 3]).expect("valid ring");
    let g = ring.graph();
    println!("ring weights: {:?}\n", g.weights());

    // 1. Closed form.
    let exact: Vec<Rational> = ring.equilibrium_utilities();

    // 2. Distributed protocol.
    let target: Vec<f64> = exact.iter().map(|u| u.to_f64()).collect();
    let mut engine = F64Engine::new(g);
    let rep = engine.run_until_close(&target, 1e-10, 2_000_000);
    let protocol = engine.averaged_utilities();

    // 3. Convex program.
    let eg = solve(g, &EgConfig::default());

    println!(" v | w_v | BD mechanism (exact) | protocol (Def. 1) | Eisenberg–Gale");
    for v in 0..g.n() {
        println!(
            " {v} | {:>3} | {:>20} | {:>17.10} | {:>14.10}",
            g.weight(v),
            format!("{} (≈{:.6})", exact[v], exact[v].to_f64()),
            protocol[v],
            eg.utilities[v],
        );
    }
    println!(
        "\nprotocol: {} rounds to 1e-10; EG: {} mirror-descent iterations",
        rep.rounds, eg.iters
    );

    let worst_protocol = protocol
        .iter()
        .zip(&target)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let worst_eg = eg
        .utilities
        .iter()
        .zip(&target)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |protocol − exact| = {worst_protocol:.2e}");
    println!("max |EG − exact|       = {worst_eg:.2e}");
    assert!(worst_protocol < 1e-8 && worst_eg < 1e-2);
    println!("\nthree derivations, one equilibrium ✓");
}
