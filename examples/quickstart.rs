//! Quickstart: one ring, the whole pipeline.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a small weighted ring, computes its bottleneck decomposition and
//! BD allocation, verifies the Proposition 6 utilities, and shows the
//! distributed proportional response protocol converging to the same fixed
//! point.

use prs::RingInstance;

fn main() {
    // Five agents on a ring, with unequal resources.
    let ring = RingInstance::from_integers(&[3, 1, 4, 1, 5]).expect("valid ring");
    println!("ring weights: {:?}", ring.graph().weights());

    // 1. The bottleneck decomposition (Definition 2).
    let bd = ring.decomposition();
    println!("\nbottleneck decomposition ({} pairs):", bd.k());
    for (i, pair) in bd.pairs().iter().enumerate() {
        println!(
            "  (B_{i}, C_{i}) = ({:?}, {:?})  α_{i} = {}",
            pair.b.to_vec(),
            pair.c.to_vec(),
            pair.alpha
        );
    }

    // 2. Equilibrium utilities (Proposition 6): w·α for B-class, w/α for
    //    C-class agents.
    println!("\nequilibrium utilities:");
    for v in 0..ring.n() {
        println!(
            "  agent {v}: class {:?}, U_{v} = {}",
            ring.class_of(v),
            ring.equilibrium_utility(v)
        );
    }

    // 3. The BD allocation realizes those utilities edge by edge.
    let alloc = ring.allocation();
    alloc.check_budget_balance(ring.graph()).expect("balanced");
    println!("\nallocation (sender → receiver: amount):");
    for &(u, v) in ring.graph().edges() {
        let fwd = alloc.sent(u, v);
        let bwd = alloc.sent(v, u);
        if fwd.is_positive() || bwd.is_positive() {
            println!("  {u} → {v}: {fwd}    {v} → {u}: {bwd}");
        }
    }

    // 4. The distributed protocol (Definition 1) reaches the same fixed
    //    point without any global computation.
    let report = ring.run_dynamics(1e-10, 100_000);
    println!(
        "\nproportional response dynamics: converged = {} after {} rounds (err {:.2e})",
        report.converged, report.rounds, report.final_error
    );
}
