//! The paper's headline scenario: a Sybil attack on a ring, audited.
//!
//! ```text
//! cargo run --release --example sybil_attack_ring
//! ```
//!
//! For each agent of an asymmetric ring: optimize the Definition 7 Sybil
//! split, report the incentive ratio ζ_v (Theorem 8 guarantees ζ_v ≤ 2),
//! classify the initial split path per Lemma 14 / Lemma 20, and audit the
//! proof's stage decomposition along the optimal trajectory.

use prs::prelude::*;
use prs::RingInstance;
use prs_core::sybil::stages::audit_stages;

fn main() {
    let ring = RingInstance::from_integers(&[8, 1, 3, 1, 6, 2]).expect("valid ring");
    println!("ring weights: {:?}\n", ring.graph().weights());

    let cfg = AttackConfig::default();
    let mut worst = (0usize, Rational::zero());

    for v in 0..ring.n() {
        let honest = ring.equilibrium_utility(v);
        let (w1_0, w2_0) = ring.honest_split(v);
        let case = ring.initial_path_case(v);
        let out = ring.sybil_attack(v, &cfg);

        println!("agent {v} (w = {}):", ring.graph().weight(v));
        println!(
            "  honest utility U_v           = {honest}  (class {:?})",
            ring.class_of(v)
        );
        println!("  honest split (w1⁰, w2⁰)      = ({w1_0}, {w2_0})");
        println!("  initial path case (Lem 14/20) = {:?}", case.case);
        println!(
            "  best split found              = ({}, {})",
            out.best.w1,
            &ring.graph().weight(v).clone() - &out.best.w1
        );
        println!(
            "  attack payoff                 = {}  →  ζ_{v} = {:.6}",
            out.best.total(),
            out.ratio_f64()
        );
        assert!(
            out.ratio <= Rational::from_integer(2),
            "Theorem 8 violated!"
        );

        let w2_star = &ring.graph().weight(v).clone() - &out.best.w1;
        match audit_stages(ring.graph(), v, &out.best.w1, &w2_star) {
            Some(rep) => {
                println!(
                    "  stage audit ({} trajectory):",
                    if rep.mirrored { "mirrored" } else { "direct" }
                );
                for (name, ok) in &rep.checks {
                    println!("    [{}] {name}", if *ok { "ok" } else { "VIOLATED" });
                }
            }
            None => println!(
                "  stage audit: trajectory payoff-neutral (Adjusting Technique) — nothing to audit"
            ),
        }
        println!();

        if out.ratio > worst.1 {
            worst = (v, out.ratio);
        }
    }

    println!(
        "worst agent: {} with ζ = {:.6} (Theorem 8 bound: 2)",
        worst.0,
        worst.1.to_f64()
    );
}
