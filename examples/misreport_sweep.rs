//! Section III-B in action: sweep an agent's reported weight.
//!
//! ```text
//! cargo run --example misreport_sweep
//! ```
//!
//! Sweeps `x ∈ [0, w_v]` for one agent, printing the exact
//! `(x, α_v(x), U_v(x), class)` series (the data behind Fig. 2), the
//! constant-shape intervals of the decomposition with their breakpoints
//! (Prop. 12 / Fig. 3), and the Proposition 11 case classification.

use prs::prelude::*;

fn main() {
    let g = builders::ring(vec![
        Rational::from_integer(6),
        Rational::from_integer(2),
        Rational::from_integer(4),
        Rational::from_integer(3),
        Rational::from_integer(5),
    ])
    .expect("valid ring");
    let v = 0usize;
    println!(
        "ring weights {:?}; sweeping agent {v}'s report x ∈ [0, {}]",
        g.weights(),
        g.weight(v)
    );

    let fam = MisreportFamily::new(g.clone(), v);
    let res = sweep(&fam, &SweepConfig::new().with_grid(32).with_refine_bits(24));

    println!("\n x\tα_v(x)\tU_v(x)\tclass");
    for s in res.samples.iter().step_by(2) {
        println!(
            " {:.4}\t{:.4}\t{:.4}\t{:?}",
            s.x.to_f64(),
            s.alpha.to_f64(),
            s.utility.to_f64(),
            s.class
        );
    }

    println!("\nconstant-shape intervals of 𝓑(x):");
    for (i, iv) in res.intervals.iter().enumerate() {
        println!(
            "  interval {i}: x ∈ [{:.6}, {:.6}], {} pairs, v is {:?}-class",
            iv.lo.to_f64(),
            iv.hi.to_f64(),
            iv.shape.len(),
            iv.focus_class
        );
    }
    let bps = res.breakpoints();
    println!(
        "breakpoints (localized): {:?}",
        bps.iter().map(|b| b.to_f64()).collect::<Vec<_>>()
    );

    let case = classify_prop11(&fam, 30);
    println!("\nProposition 11 case for agent {v}: {case:?}");
    match case {
        Prop11Case::B1 => println!("  → C-class throughout; α_v(x) non-decreasing (Fig. 2a)"),
        Prop11Case::B2 => println!("  → B-class throughout; α_v(x) non-increasing (Fig. 2b)"),
        Prop11Case::B3 { ref lo, ref hi } => println!(
            "  → crossover x* ∈ [{:.6}, {:.6}] with α_v(x*) = 1 (Fig. 2c)",
            lo.to_f64(),
            hi.to_f64()
        ),
    }
}
