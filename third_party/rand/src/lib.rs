//! Offline drop-in shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand` API it actually calls:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen_bool`. The generator is SplitMix64 feeding xoshiro256++,
//! which is more than adequate for test-instance generation (the only use
//! here); it makes no cryptographic claims. Streams are stable across
//! runs and platforms, so seeded experiments stay reproducible.

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by Lemire-style rejection (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = uniform_below(rng, span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the upstream `StdRng` algorithm (that is ChaCha12), but the
    /// contract this workspace relies on — deterministic, well-mixed,
    /// seedable streams — is identical.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&x));
            let y = rng.gen_range(3usize..7);
            assert!((3..7).contains(&y));
            let z = rng.gen_range(1i64..=12);
            assert!((1..=12).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} implausible");
        }
    }
}
