//! Offline drop-in shim for the subset of `criterion` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! small wall-clock benchmarking harness with criterion's call shape:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], `criterion_group!`, and
//! `criterion_main!`. Differences from upstream, by design:
//!
//! * Timing is a calibrated median-of-samples estimate printed as
//!   `time: <ns>/iter`, with no statistical regression analysis, HTML
//!   reports, or saved baselines.
//! * `cargo bench -- <substring>` filters benchmark ids; other flags are
//!   accepted and ignored so criterion-style invocations keep working.
//!
//! Machine-readable output: when `CRITERION_JSON` is set to a path, every
//! measurement is appended there as one JSON object per line
//! (`{"id": …, "ns_per_iter": …, "iters": …}`), which the experiment
//! harness uses to assemble `BENCH_seed.json`.

use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque-value hint, re-exported so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// One measurement, in the middle of being taken.
pub struct Bencher {
    ns_per_iter: f64,
    iters_run: u64,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            ns_per_iter: f64::NAN,
            iters_run: 0,
            target,
        }
    }

    /// Time `routine`, called in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: run until ~10% of the budget is spent.
        let warmup_budget = self.target / 10;
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while start.elapsed() < warmup_budget || warmup_iters == 0 {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let sample_iters =
            ((self.target.as_nanos() as f64 / 3.0 / per_iter.max(1.0)).ceil() as u64).max(1);

        // Three samples; keep the median to shave scheduler noise.
        let mut samples = [0.0f64; 3];
        let mut total_iters = warmup_iters;
        for slot in &mut samples {
            let t0 = Instant::now();
            for _ in 0..sample_iters {
                black_box(routine());
            }
            *slot = t0.elapsed().as_nanos() as f64 / sample_iters as f64;
            total_iters += sample_iters;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[1];
        self.iters_run = total_iters;
    }

    /// Time `routine` on fresh inputs built by `setup` (setup excluded from
    /// the timing by per-iteration stopwatch accumulation).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Calibrate on one timed call.
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let per_iter = (t0.elapsed().as_nanos() as f64).max(1.0);
        let sample_iters =
            ((self.target.as_nanos() as f64 / 3.0 / per_iter).ceil() as u64).clamp(1, 1_000_000);

        let mut samples = [0.0f64; 3];
        let mut total_iters = 1u64;
        for slot in &mut samples {
            let mut spent = Duration::ZERO;
            for _ in 0..sample_iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                spent += t.elapsed();
            }
            *slot = spent.as_nanos() as f64 / sample_iters as f64;
            total_iters += sample_iters;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[1];
        self.iters_run = total_iters;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn record(id: &str, b: &Bencher) {
    println!(
        "{id:<48} time: {:>12}/iter   ({} iters)",
        human(b.ns_per_iter),
        b.iters_run
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
                id.replace('"', "'"),
                b.ns_per_iter,
                b.iters_run
            );
        }
    }
}

/// The benchmark manager (`criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        // CRITERION_TARGET_MS shortens runs (used by smoke tests / CI).
        let ms = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(900u64);
        Criterion {
            filter,
            target: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; argument handling happens in
    /// `Default::default`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        if self.selected(&id) {
            let mut b = Bencher::new(self.target);
            f(&mut b);
            record(&id, &b);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks (`criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim auto-calibrates instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group (id is `group/function`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        if self.parent.selected(&id) {
            let mut b = Bencher::new(self.parent.target);
            f(&mut b);
            record(&id, &b);
        }
        self
    }

    /// Close the group (upstream flushes reports here; the shim prints as it
    /// goes).
    pub fn finish(self) {}
}

/// `criterion_group!(name, target, ...)`: bundle benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)`: the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter.is_finite() && b.ns_per_iter > 0.0);
        assert!(b.iters_run > 0);
    }

    #[test]
    fn groups_and_filters() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            target: Duration::from_millis(5),
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("keep/x", |b| {
                b.iter(|| 1 + 1);
            });
            g.finish();
        }
        // The filter excludes this one entirely; reaching here without
        // running it is the check (no panic, no timing).
        c.bench_function("skipped", |_b| {
            ran += 1;
        });
        assert_eq!(ran, 0);
    }
}
