//! Offline drop-in shim for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! small, deterministic property-testing harness with proptest's surface
//! syntax: the `proptest!` macro (with `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `Strategy` with
//! `prop_map`/`prop_flat_map`, `Just`, `any::<T>()`, integer/float range
//! strategies, tuple strategies, and `proptest::collection::vec`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs verbatim
//!   (every strategy value is `Debug`), without minimization.
//! * **Deterministic seeding.** Each test function derives its RNG seed from
//!   its own name, so runs are reproducible without a seed file. The
//!   `PROPTEST_CASES` environment variable scales case counts; `.proptest-regressions`
//!   files are kept for provenance but their `cc` hashes (upstream RNG seeds)
//!   are not replayable here — pinned counterexamples must also appear as
//!   directed `#[test]` regressions, which is this workspace's convention.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Runner configuration and failure plumbing (`proptest::test_runner`).

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case asked to be discarded (`prop_assume!` failed).
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration (`proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
        /// Maximum rejected cases before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// Config running `cases` cases, other knobs default.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }

        /// Effective case count, honoring the `PROPTEST_CASES` env override.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65536,
            }
        }
    }
}

/// Deterministic per-test RNG handed to strategies.
pub struct TestRng(pub rand::rngs::StdRng);

impl TestRng {
    /// Seed from the fully qualified test name (FNV-1a) so every property
    /// gets an independent, reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        use rand::SeedableRng;
        TestRng(rand::rngs::StdRng::seed_from_u64(h))
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (`Strategy::prop_map`).
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects
    /// (`Strategy::prop_flat_map`).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// 128-bit ranges are sampled through two 64-bit draws (the rand shim is
// 64-bit); rejection keeps them uniform.
macro_rules! impl_range_strategy_128 {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                loop {
                    use rand::RngCore;
                    let raw = ((rng.0.next_u64() as $u) << 64) | rng.0.next_u64() as $u;
                    // Rejection zone for unbiased modulo.
                    let zone = <$u>::MAX - (<$u>::MAX - span + 1) % span;
                    if raw <= zone {
                        return (self.start as $u).wrapping_add(raw % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_range_strategy_128!(u128 => u128, i128 => u128);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.0.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized + Debug {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.0.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        use rand::RngCore;
        ((rng.0.next_u64() as u128) << 64) | rng.0.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.0.next_u64() & 1 == 1
    }
}

/// Strategy behind [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.0.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring `proptest::strategy`.
    pub use super::{Just, Strategy};
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{any, Arbitrary, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, ...)`: fail the current
/// case (without panicking past the harness) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)`: fail the case when `a != b`, showing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!(a, b)`: fail the case when `a == b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// `prop_assume!(cond)`: discard the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The `proptest!` block macro: a sequence of `#[test] fn name(args) {...}`
/// items whose arguments are drawn from strategies (`pat in strategy`) or
/// whole domains (`ident: Type`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Internal: munch test items one at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let cases = cfg.effective_cases();
            let mut rng = $crate::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < cases {
                let mut case_inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $crate::__proptest_bind!(rng, case_inputs, $($args)*);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        if rejected > cfg.max_global_rejects {
                            panic!(
                                "{} cases rejected by prop_assume!; giving up",
                                rejected
                            );
                        }
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "property `{}` failed after {} passing case(s):\n{}\ninputs: {}",
                            stringify!($name),
                            accepted,
                            msg,
                            case_inputs.join(", "),
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Internal: bind each argument (`pat in strategy` or `ident: Type`) to a
/// freshly generated value, recording a debug rendering of every input so a
/// failure can report the full counterexample (there is no shrinking).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $inputs:ident $(,)?) => {};
    ($rng:ident, $inputs:ident, $pat:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $pat: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $inputs.push(format!("{} = {:?}", stringify!($pat), $pat));
        $crate::__proptest_bind!($rng, $inputs $(, $($rest)*)?);
    };
    ($rng:ident, $inputs:ident, $pat:pat in $strategy:expr $(, $($rest:tt)*)?) => {
        let __proptest_value = $crate::Strategy::generate(&($strategy), &mut $rng);
        $inputs.push(format!(
            "{} = {:?}",
            stringify!($pat),
            __proptest_value
        ));
        let $pat = __proptest_value;
        $crate::__proptest_bind!($rng, $inputs $(, $($rest)*)?);
    };
}
