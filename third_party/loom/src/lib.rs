//! Offline shim for the subset of [`loom`](https://docs.rs/loom) this
//! workspace uses.
//!
//! The real loom replaces `std::thread` and `std::sync` with instrumented
//! versions and runs [`model`] bodies under an exhaustive permutation of
//! schedules (DPOR). The registry is unreachable in this build environment,
//! so this shim makes an **honest downgrade**: the `loom::thread` /
//! `loom::sync` paths re-export the real `std` types, and [`model`] runs
//! the body `LOOM_MAX_PREEMPTIONS`-independent **stress iterations**
//! (default 64, override with the `LOOM_SHIM_ITERS` env var) instead of
//! exploring schedules exhaustively.
//!
//! What this preserves: model tests compile against the loom API, their
//! invariants are exercised under genuine OS-thread interleaving many
//! times per run, and the test file migrates to the real loom verbatim —
//! delete this shim from `[workspace.dependencies]`, add the registry
//! crate, and the `cfg(loom)`-free subset of the API matches.
//!
//! What this does NOT give you: exhaustive schedule coverage or the
//! C11-memory-model simulation. A data race that needs a pathological
//! schedule can survive stress iterations; CI therefore also runs the
//! suite under higher iteration counts (see `.github/workflows/ci.yml`).

/// `loom::thread` — re-export of [`std::thread`].
pub mod thread {
    pub use std::thread::*;
}

/// `loom::sync` — re-export of [`std::sync`] plus loom's extra nesting.
pub mod sync {
    pub use std::sync::*;

    /// `loom::sync::atomic` — re-export of [`std::sync::atomic`].
    pub mod atomic {
        pub use std::sync::atomic::*;
    }
}

/// `loom::hint` — re-export of [`std::hint`].
pub mod hint {
    pub use std::hint::*;
}

/// Default stress iterations when `LOOM_SHIM_ITERS` is unset.
pub const DEFAULT_ITERS: usize = 64;

/// Run `f` repeatedly under real OS threads (stress mode).
///
/// The real loom explores every schedule of the body exactly once each;
/// this shim approximates that with `LOOM_SHIM_ITERS` (default
/// [`DEFAULT_ITERS`]) independent runs, relying on OS scheduling jitter
/// for interleaving diversity. Panics propagate on the first failing
/// iteration, with the iteration index attached so failures reproduce.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = std::env::var("LOOM_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITERS);
    for i in 0..iters {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(payload) = result {
            eprintln!("loom-shim: model body failed on stress iteration {i}/{iters}");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_the_body() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        super::model(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert!(count.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn model_spawns_real_threads() {
        super::model(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = Arc::clone(&flag);
            let h = super::thread::spawn(move || f2.store(7, Ordering::SeqCst));
            h.join().unwrap();
            assert_eq!(flag.load(Ordering::SeqCst), 7);
        });
    }
}
