//! Offline drop-in shim for the subset of `crossbeam` this workspace uses.
//!
//! Only [`scope`] is provided. It is a thin adapter over
//! `std::thread::scope` (stable since Rust 1.63), which supersedes
//! crossbeam's scoped threads; the adapter keeps crossbeam's call shape —
//! `scope(|s| { s.spawn(|_| …); }).unwrap()` — so call sites read
//! identically to the upstream crate and can migrate back verbatim if the
//! registry ever becomes reachable.

/// Scope handle passed to the [`scope`] closure; mirrors
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread; mirrors
/// `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish; `Err` carries the thread's panic
    /// payload, as in crossbeam.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope again (the
    /// crossbeam signature), so nested spawns type-check unchanged.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
        }
    }
}

/// Run `f` with a [`Scope`]; every thread spawned inside is joined before
/// `scope` returns. Mirrors `crossbeam::scope`, including the
/// `thread::Result` wrapper (`Err` only if a *detached* child panicked —
/// with std scopes a child panic propagates on join instead, so this shim
/// returns `Ok` or propagates the panic; `.unwrap()` call sites behave the
/// same either way).
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_stack_data() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn join_returns_value() {
        let out = super::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
